"""Disk cache: round-trips, hit/miss accounting, corruption tolerance,
the in-memory LRU tier, and multi-process contention."""

import json
import multiprocessing

import pytest

from repro.eval import cells as cells_module
from repro.eval.cells import (
    decode_result,
    encode_result,
    fanout_cell,
    measure_cell,
    native_cell,
)
from repro.eval.diskcache import DiskCache
from repro.eval.runner import clear_caches
from repro.host.profile import SIMPLE
from repro.sdt.config import SDTConfig


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture
def cache(tmp_path):
    return DiskCache(tmp_path / "cache")


def _measure_cell():
    return measure_cell(
        "gzip_like", "tiny", SDTConfig(profile=SIMPLE, ib="ibtc")
    )


class TestRoundTrip:
    @pytest.mark.parametrize("make_cell", [
        _measure_cell,
        lambda: native_cell("gzip_like", "tiny", SIMPLE),
        lambda: fanout_cell("gzip_like", "tiny"),
    ])
    def test_put_get_round_trip(self, cache, make_cell):
        cell = make_cell()
        result = cell.execute()
        assert cache.get(cell) is None          # cold cache: miss
        cache.put(cell, result)
        restored = cache.get(cell)
        assert restored is not None
        assert encode_result(restored) == encode_result(result)
        assert cache.hits == 1 and cache.misses == 1

    def test_codec_rejects_unknown_payloads(self):
        with pytest.raises(TypeError):
            encode_result(object())
        with pytest.raises(ValueError):
            decode_result({"type": "mystery", "data": {}})

    def test_measurement_values_survive_json(self, cache):
        cell = _measure_cell()
        result = cell.execute()
        cache.put(cell, result)
        restored = cache.get(cell)
        assert restored.overhead == result.overhead
        assert restored.breakdown == result.breakdown
        assert restored.hit_rates == result.hit_rates


class TestCorruptionTolerance:
    def test_truncated_entry_is_discarded_and_recomputed(self, cache):
        cell = _measure_cell()
        cache.put(cell, cell.execute())
        path = cache.path_for(cell)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.get(cell) is None
        assert not path.exists()                # bad entry deleted
        # recompute and repopulate as the executor would
        cache.put(cell, cell.execute())
        assert cache.get(cell) is not None

    def test_zero_byte_entry_is_a_miss_and_deleted(self, cache):
        """A crash between create and write leaves an empty file."""
        cell = _measure_cell()
        cache.put(cell, cell.execute())
        path = cache.path_for(cell)
        path.write_bytes(b"")
        assert cache.get(cell) is None
        assert not path.exists()
        assert cache.misses == 1

    def test_binary_garbage_is_a_miss_and_deleted(self, cache):
        cell = _measure_cell()
        cache.put(cell, cell.execute())
        path = cache.path_for(cell)
        path.write_bytes(b"\xff\xfe\x00garbage\x80")   # not even UTF-8
        assert cache.get(cell) is None
        assert not path.exists()

    def test_stale_tmp_leftovers_do_not_break_lookups(self, cache):
        cell = _measure_cell()
        cache.put(cell, cell.execute())
        path = cache.path_for(cell)
        (path.parent / ".tmp-leftover.json").write_text("partial")
        assert cache.get(cell) is not None      # real entry still served

    def test_garbage_json_is_discarded(self, cache):
        cell = _measure_cell()
        cache.put(cell, cell.execute())
        cache.path_for(cell).write_text("{}")
        assert cache.get(cell) is None

    def test_fingerprint_mismatch_is_never_trusted(self, cache):
        """An entry whose stored fingerprint disagrees is stale — drop it."""
        cell = _measure_cell()
        cache.put(cell, cell.execute())
        path = cache.path_for(cell)
        payload = json.loads(path.read_text())
        payload["fingerprint"] = "something-else"
        path.write_text(json.dumps(payload))
        assert cache.get(cell) is None
        assert not path.exists()

    def test_no_temp_droppings_after_put(self, cache):
        cell = _measure_cell()
        cache.put(cell, cell.execute())
        leftovers = [
            p for p in cache.root.rglob("*") if p.name.startswith(".tmp-")
        ]
        assert leftovers == []
        assert len(cache) == 1


class TestInvalidation:
    def test_code_salt_invalidates_old_entries(self, cache, monkeypatch):
        cell = _measure_cell()
        cache.put(cell, cell.execute())
        monkeypatch.setattr(cells_module, "CODE_SALT", "repro/0.0.0-test")
        assert cache.get(cell) is None          # different key → miss

    def test_fuel_is_part_of_the_key(self, cache):
        cell = _measure_cell()
        other = measure_cell(
            "gzip_like", "tiny", SDTConfig(profile=SIMPLE, ib="ibtc"),
            fuel=cell.fuel - 1,
        )
        assert cell.key() != other.key()
        cache.put(cell, cell.execute())
        assert cache.get(other) is None

    def test_workload_source_is_part_of_the_key(self):
        from repro.workloads.microbench import dispatch_microbench

        config = SDTConfig(profile=SIMPLE, ib="ibtc")
        a = measure_cell(dispatch_microbench(2, iterations=10), "tiny", config)
        b = measure_cell(dispatch_microbench(2, iterations=20), "tiny", config)
        assert a.workload_name == b.workload_name  # same name ...
        assert a.key() != b.key()                  # ... different source


class TestLruTier:
    def test_second_get_is_served_from_memory(self, tmp_path):
        cache = DiskCache(tmp_path / "cache", lru_entries=4)
        cell = _measure_cell()
        cache.put(cell, cell.execute())
        assert cache.get(cell) is not None
        assert cache.memory_hits == 1           # put pre-filled the tier

    def test_disk_hit_populates_the_tier(self, tmp_path):
        writer = DiskCache(tmp_path / "cache")
        cell = _measure_cell()
        writer.put(cell, cell.execute())

        reader = DiskCache(tmp_path / "cache", lru_entries=4)
        assert reader.get(cell) is not None
        assert reader.memory_hits == 0          # first read came from disk
        assert reader.get(cell) is not None
        assert reader.memory_hits == 1          # now resident in memory

    def test_capacity_evicts_least_recently_used(self, tmp_path):
        cache = DiskCache(tmp_path / "cache", lru_entries=2)
        cells = [
            measure_cell("gzip_like", "tiny",
                         SDTConfig(profile=SIMPLE, ib="ibtc"),
                         fuel=1_000_000 + n)
            for n in range(3)
        ]
        results = [cell.execute() for cell in cells]
        for cell, result in zip(cells, results):
            cache.put(cell, result)
        assert len(cache.lru) == 2
        # cells[0] was evicted: served from disk, then re-admitted
        before = cache.memory_hits
        assert cache.get(cells[0]) is not None
        assert cache.memory_hits == before

    def test_memory_result_identical_to_disk_result(self, tmp_path):
        cache = DiskCache(tmp_path / "cache", lru_entries=4)
        cell = _measure_cell()
        cache.put(cell, cell.execute())
        from_memory = cache.get(cell)
        cold = DiskCache(tmp_path / "cache")
        from_disk = cold.get(cell)
        assert encode_result(from_memory) == encode_result(from_disk)

    def test_zero_entries_disables_the_tier(self, tmp_path):
        cache = DiskCache(tmp_path / "cache", lru_entries=0)
        assert cache.lru is None
        cell = _measure_cell()
        cache.put(cell, cell.execute())
        assert cache.get(cell) is not None
        assert cache.memory_hits == 0


def _contend(root, index, barrier, out):
    """Worker: hammer one shared cache dir with puts and gets."""
    from repro.eval.diskcache import DiskCache
    from repro.eval.cells import encode_result, fanout_cell, native_cell
    from repro.host.profile import SIMPLE

    cache = DiskCache(root)
    cells = [
        native_cell("gzip_like", "tiny", SIMPLE, fuel=500_000),
        fanout_cell("gzip_like", "tiny", fuel=500_000),
        native_cell("mcf_like", "tiny", SIMPLE, fuel=500_000),
    ]
    results = [cell.execute() for cell in cells]
    barrier.wait(timeout=60)                   # maximise overlap
    digests = []
    for round_no in range(6):
        for cell, result in zip(cells, results):
            cache.put(cell, result)
            seen = cache.get(cell)
            # torn read would surface as None (discarded) or garbage;
            # None is only legal before the first put completes, and
            # here our own put already landed
            assert seen is not None, f"worker {index} torn read"
            digests.append(json.dumps(encode_result(seen),
                                      sort_keys=True))
    out.put((index, digests))


class TestMultiProcessContention:
    def test_concurrent_writers_never_tear(self, tmp_path):
        """N processes put/get the same cells in the same directory;
        every read returns a byte-identical, well-formed result."""
        root = tmp_path / "shared-cache"
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(4)
        out = ctx.Queue()
        workers = [
            ctx.Process(target=_contend, args=(root, n, barrier, out))
            for n in range(4)
        ]
        for worker in workers:
            worker.start()
        collected = {}
        for _ in workers:
            index, digests = out.get(timeout=120)
            collected[index] = digests
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        # every worker saw the same bytes for every (cell, read) pair
        reference = collected[0]
        for index, digests in collected.items():
            assert digests == reference, f"worker {index} diverged"
        # and the surviving on-disk entries decode cleanly
        survivors = DiskCache(root)
        assert len(survivors) == 3
        for path in root.glob("*/*.json"):
            payload = json.loads(path.read_text(encoding="utf-8"))
            assert "fingerprint" in payload and "type" in payload
        # no temp droppings left behind by any racer
        assert [p for p in root.rglob(".tmp-*")] == []
