"""Per-site IB target fan-out profiling."""

import pytest

from repro.eval.fanout import FanoutProfile, SiteProfile, collect_fanout
from repro.lang import compile_to_program
from repro.machine.interpreter import Interpreter
from repro.workloads.base import Workload


def profile_source(source: str) -> FanoutProfile:
    from repro.eval.fanout import _FanoutObserver

    observer = _FanoutObserver()
    Interpreter(compile_to_program(source), observer=observer).run()
    return FanoutProfile(sites=observer.sites)


MIXED = """
int a(int x) { return x + 1; }
int b(int x) { return x * 2; }
int c(int x) { return x - 3; }
int tab[] = { &a, &b, &c };
int main() {
    int total = 0;
    int i;
    for (i = 0; i < 30; i++) {
        int f = tab[i % 3];   /* one site, 3 targets */
        total += f(i);
    }
    print_int(total);
    return 0;
}
"""


class TestSiteProfile:
    def test_fanout_counts_distinct_targets(self):
        site = SiteProfile(pc=0x100, kind="ijump")
        site.targets.update({1, 2, 2, 3})
        assert site.fanout == 3


class TestCollection:
    def test_polymorphic_call_site(self):
        profile = profile_source(MIXED)
        icall_sites = [
            s for s in profile.sites.values() if s.kind == "icall"
        ]
        assert len(icall_sites) == 1
        assert icall_sites[0].fanout == 3
        assert icall_sites[0].dispatches == 30

    def test_return_sites_recorded(self):
        profile = profile_source(MIXED)
        ret_sites = [s for s in profile.sites.values() if s.kind == "ret"]
        # a, b, c and main each return (main returns to _start)
        assert len(ret_sites) == 4

    def test_total_dispatches(self):
        profile = profile_source(MIXED)
        # 30 icalls + 30 callee rets + main's ret
        assert profile.total_dispatches == 61

    def test_ranges_partition_sites(self):
        profile = profile_source(MIXED)
        total = (
            profile.sites_with_fanout(1, 1)
            + profile.sites_with_fanout(2, 4)
            + profile.sites_with_fanout(5, 16)
            + profile.sites_with_fanout(17)
        )
        assert total == len(profile.sites)

    def test_dispatch_share_sums_to_one(self):
        profile = profile_source(MIXED)
        share = (
            profile.dispatch_share(1, 1)
            + profile.dispatch_share(2, 4)
            + profile.dispatch_share(5, 16)
            + profile.dispatch_share(17)
        )
        assert share == pytest.approx(1.0)

    def test_weighted_mean_between_min_and_max(self):
        profile = profile_source(MIXED)
        fanouts = [s.fanout for s in profile.sites.values()]
        assert min(fanouts) <= profile.weighted_mean_fanout <= max(fanouts)

    def test_empty_profile(self):
        profile = FanoutProfile(sites={})
        assert profile.total_dispatches == 0
        assert profile.max_fanout == 0
        assert profile.dispatch_share(1) == 0.0
        assert profile.weighted_mean_fanout == 0.0


class TestWorkloadIntegration:
    def test_collect_by_name(self):
        profile = collect_fanout("perl_like", scale="tiny")
        # the interpreter's dispatch site must be megamorphic
        assert profile.max_fanout >= 10

    def test_collect_by_object(self):
        from repro.workloads import get_workload

        workload = get_workload("gzip_like", "tiny")
        assert isinstance(workload, Workload)
        profile = collect_fanout(workload, scale="tiny")
        assert profile.total_dispatches > 0
