"""IB-state coherence checking: violation detection and the watchdog.

These tests plant stale fragment pointers by hand in real post-run VMs
and check that :func:`collect_violations` finds exactly them — plus the
negative space: a clean run never reports anything.
"""

import pytest

from repro.faults.inject import apply_plan_perturbation, tombstone
from repro.faults.invariants import (
    CoherenceError,
    CoherenceViolation,
    InvariantChecker,
    _check_refs,
    assert_coherent,
    collect_violations,
)
from repro.host.profile import SIMPLE
from repro.sdt.config import SDTConfig
from repro.sdt.fragment import ExitKind, Fragment
from repro.sdt.vm import SDTVM
from repro.workloads import get_workload


def fresh_vm(**config_kwargs):
    config = SDTConfig(profile=SIMPLE, **config_kwargs)
    vm = SDTVM(get_workload("gzip_like", "tiny").compile(), config=config)
    result = vm.run()
    assert result.exit_code == 0
    return vm


def make_fragment(pc=0x1000):
    return Fragment(guest_pc=pc, fc_addr=0, instrs=[],
                    exit_kind=ExitKind.JUMP)


class TestCheckRefs:
    def test_none_entries_skipped(self):
        violations = []
        _check_refs("t", [None, None], set(), violations)
        assert violations == []

    def test_invalid_ref_is_stale(self):
        frag = tombstone(make_fragment())
        violations = []
        _check_refs("t", [frag], {id(frag)}, violations)
        assert [v.kind for v in violations] == ["stale-fragment"]
        assert violations[0].site == "t"

    def test_valid_but_unregistered_ref(self):
        frag = make_fragment()
        violations = []
        _check_refs("t", [frag], set(), violations)
        assert [v.kind for v in violations] == ["unregistered-fragment"]

    def test_registered_valid_ref_is_fine(self):
        frag = make_fragment()
        violations = []
        _check_refs("t", [frag], {id(frag)}, violations)
        assert violations == []


class TestCollectViolations:
    @pytest.mark.parametrize("mechanism", ("reentry", "ibtc", "sieve"))
    def test_clean_run_has_none(self, mechanism):
        vm = fresh_vm(ib=mechanism)
        assert collect_violations(vm) == []
        assert_coherent(vm)  # must not raise

    def test_planted_ibtc_tombstone_found(self):
        vm = fresh_vm(ib="ibtc")
        table = vm.generic_ib._shared_table
        assert table is not None
        live = next(f for f in table.frags if f is not None)
        table.frags[table.frags.index(live)] = tombstone(live)
        found = collect_violations(vm)
        assert [v.kind for v in found] == ["stale-fragment"]
        assert found[0].site == vm.generic_ib.name

    def test_planted_stale_link_found(self):
        vm = fresh_vm(ib="ibtc")
        frag = vm.cache.fragments()[0]
        frag.links["planted"] = tombstone(make_fragment(0xDEAD))
        found = collect_violations(vm)
        assert [(v.site, v.kind) for v in found] == \
            [("links", "stale-fragment")]
        assert "planted" in found[0].detail

    def test_corrupted_plan_found(self):
        vm = fresh_vm(ib="ibtc", engine="threaded")
        planned = [f for f in vm.cache.fragments() if f.plan is not None]
        assert planned, "threaded run should attach superblock plans"
        apply_plan_perturbation(planned[0].plan, "entry")
        found = collect_violations(vm)
        assert [(v.site, v.kind) for v in found] == [("plan", "bad-plan")]

    def test_every_perturbation_kind_is_detectable(self):
        from repro.faults.inject import PLAN_PERTURBATIONS

        for kind in PLAN_PERTURBATIONS:
            vm = fresh_vm(ib="ibtc", engine="threaded")
            planned = [f for f in vm.cache.fragments()
                       if f.plan is not None]
            apply_plan_perturbation(planned[0].plan, kind)
            assert collect_violations(vm), kind

    def test_assert_coherent_raises_with_details(self):
        vm = fresh_vm(ib="sieve")
        frag = vm.cache.fragments()[0]
        frag.links["bad"] = tombstone(make_fragment())
        with pytest.raises(CoherenceError) as excinfo:
            assert_coherent(vm)
        err = excinfo.value
        assert isinstance(err, AssertionError)
        assert len(err.violations) == 1
        assert "links" in str(err)


class TestInvariantChecker:
    def test_checker_counts_every_flush(self):
        vm = fresh_vm(ib="ibtc", fragment_cache_bytes=1024,
                      faults="storm:7")
        checker = vm.invariant_checker
        assert checker is not None
        assert vm.stats.cache_flushes > 0
        assert checker.flushes_checked == vm.stats.cache_flushes
        assert checker.violations == []
        assert vm.stats.faults["invariant.flushes_checked"] == \
            checker.flushes_checked

    def test_checker_detects_planted_state(self):
        vm = fresh_vm(ib="ibtc")
        checker = InvariantChecker(vm)
        frag = vm.cache.fragments()[0]
        frag.links["bad"] = tombstone(make_fragment())
        checker._on_flush()
        assert checker.flushes_checked == 1
        assert [v.site for v in checker.violations] == ["links"]
        assert vm.stats.faults["invariant.violations"] == 1

    def test_report_shape(self):
        vm = fresh_vm(ib="ibtc")
        checker = InvariantChecker(vm)
        frag = vm.cache.fragments()[0]
        frag.links["bad"] = tombstone(make_fragment())
        checker._on_flush()
        report = checker.report()
        assert report["flushes_checked"] == 1
        assert report["violations"] == [{
            "site": "links",
            "kind": "stale-fragment",
            "detail": checker.violations[0].detail,
        }]
        import json

        json.dumps(report)  # must be JSON-serialisable as-is

    def test_violation_str_is_informative(self):
        violation = CoherenceViolation(
            site="ibtc", kind="stale-fragment", detail="d",
        )
        assert str(violation) == "[ibtc] stale-fragment: d"
