"""Fragment-cache introspection helpers."""

from conftest import ALL_IB_KINDS_SOURCE
from repro.host.profile import SIMPLE
from repro.lang import compile_to_program
from repro.sdt.config import SDTConfig
from repro.sdt.debug import dump_fragment_cache, format_fragment, hottest_fragments
from repro.sdt.vm import SDTVM


def run_vm():
    vm = SDTVM(compile_to_program(ALL_IB_KINDS_SOURCE),
               SDTConfig(profile=SIMPLE))
    vm.run()
    return vm


class TestFormatFragment:
    def test_header_fields(self):
        vm = run_vm()
        fragment = hottest_fragments(vm, 1)[0]
        text = format_fragment(fragment, disassemble=False)
        assert f"{fragment.guest_pc:#010x}" in text
        assert f"execs={fragment.executions}" in text
        assert fragment.exit_kind.value in text

    def test_disassembly_lines(self):
        vm = run_vm()
        fragment = hottest_fragments(vm, 1)[0]
        text = format_fragment(fragment, disassemble=True)
        assert len(text.splitlines()) == 1 + len(fragment.instrs)

    def test_links_rendered(self):
        vm = run_vm()
        linked = [f for f in vm.cache.fragments() if f.links]
        assert linked  # the hot loop must have linked exits
        text = format_fragment(linked[0], disassemble=False)
        assert "->" in text


class TestDump:
    def test_summary_line(self):
        vm = run_vm()
        text = dump_fragment_cache(vm)
        first = text.splitlines()[0]
        assert f"{len(vm.cache.fragments())} fragments" in first
        assert f"{vm.cache.bytes_used} bytes" in first

    def test_limit(self):
        vm = run_vm()
        text = dump_fragment_cache(vm, limit=3)
        assert len(text.splitlines()) == 4  # summary + 3

    def test_min_executions_filter(self):
        vm = run_vm()
        everything = dump_fragment_cache(vm)
        hot_only = dump_fragment_cache(vm, min_executions=10)
        assert len(hot_only.splitlines()) <= len(everything.splitlines())

    def test_sorted_by_heat(self):
        vm = run_vm()
        fragments = hottest_fragments(vm, 5)
        executions = [fragment.executions for fragment in fragments]
        assert executions == sorted(executions, reverse=True)


class TestCLICommands:
    def test_fragments_command(self, capsys):
        from repro.cli import main

        assert main(["fragments", "eon_like", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "fragment cache:" in out

    def test_fanout_command(self, capsys):
        from repro.cli import main

        assert main(["fanout", "gcc_like", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "IB sites" in out
        assert "monomorphic" in out
