"""Assembler: syntax, pseudo-ops, directives, labels, errors."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.encoding import decode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import DATA_BASE, TEXT_BASE


def words(program):
    return [decode(w) for w in program.text_words()]


class TestBasicAssembly:
    def test_r_format(self):
        prog = assemble(".text\nadd t0, t1, t2\n")
        assert words(prog) == [Instruction(Op.ADD, rd=8, rs=9, rt=10)]

    def test_i_format(self):
        prog = assemble(".text\naddi sp, sp, -16\n")
        assert words(prog) == [Instruction(Op.ADDI, rt=29, rs=29, imm=-16)]

    def test_memory_operand(self):
        prog = assemble(".text\nlw ra, 4(sp)\nsw a0, -8(fp)\n")
        assert words(prog) == [
            Instruction(Op.LW, rt=31, rs=29, imm=4),
            Instruction(Op.SW, rt=4, rs=30, imm=-8),
        ]

    def test_shift_format(self):
        prog = assemble(".text\nsll t0, t1, 3\n")
        assert words(prog) == [Instruction(Op.SLL, rd=8, rt=9, shamt=3)]

    def test_comments_and_blanks(self):
        prog = assemble(
            "# leading comment\n.text\n\nadd t0, t0, t0  # tail\n; alt\n"
        )
        assert len(words(prog)) == 1

    def test_entry_defaults_to_main(self):
        prog = assemble(".text\nfoo:\nnop\nmain:\nnop\n")
        assert prog.entry == prog.symbols["main"] == TEXT_BASE + 4

    def test_entry_directive(self):
        prog = assemble(".text\nstart:\nnop\nmain:\nnop\n.entry start\n")
        assert prog.entry == TEXT_BASE

    def test_label_on_same_line(self):
        prog = assemble(".text\nmain: nop\n")
        assert prog.symbols["main"] == TEXT_BASE


class TestBranchesAndJumps:
    def test_forward_branch_offset(self):
        prog = assemble(".text\nbeq t0, t1, target\nnop\ntarget:\nnop\n")
        beq = words(prog)[0]
        # offset is in words relative to pc+4: one instruction skipped
        assert beq.imm == 1

    def test_backward_branch_offset(self):
        prog = assemble(".text\nloop:\nnop\nbne t0, zero, loop\n")
        bne = words(prog)[1]
        assert bne.imm == -2

    def test_branch_resolves_to_address(self):
        prog = assemble(".text\nmain:\nbeq zero, zero, main\n")
        instr = words(prog)[0]
        assert instr.branch_target(TEXT_BASE) == TEXT_BASE

    def test_jump_absolute(self):
        prog = assemble(".text\nmain:\nj main\n")
        instr = words(prog)[0]
        assert instr.branch_target(TEXT_BASE) == TEXT_BASE

    def test_jal_and_jr(self):
        prog = assemble(".text\nmain:\njal main\njr t0\njalr t1\nret\n")
        ops = [i.op for i in words(prog)]
        assert ops == [Op.JAL, Op.JR, Op.JALR, Op.RET]

    def test_jalr_two_operand_form(self):
        prog = assemble(".text\njalr v0, t3\n")
        instr = words(prog)[0]
        assert (instr.rd, instr.rs) == (2, 11)

    def test_branch_out_of_range(self):
        body = ".text\nstart:\n" + "nop\n" * 40000 + "beq zero, zero, start\n"
        with pytest.raises(AssemblyError):
            assemble(body)


class TestPseudoOps:
    def test_li_small(self):
        prog = assemble(".text\nli t0, 42\n")
        assert words(prog) == [Instruction(Op.ADDI, rt=8, rs=0, imm=42)]

    def test_li_negative_small(self):
        prog = assemble(".text\nli t0, -5\n")
        assert words(prog)[0].imm == -5

    def test_li_large_two_instrs(self):
        prog = assemble(".text\nli t0, 0x12345678\n")
        instrs = words(prog)
        assert [i.op for i in instrs] == [Op.LUI, Op.ORI]
        assert instrs[0].imm == 0x1234
        assert instrs[1].imm == 0x5678

    def test_li_hi_only(self):
        prog = assemble(".text\nli t0, 0x70000\n")
        # 0x70000 has low bits set (0x0007_0000 -> lui 0x7 only)
        assert words(prog) == [Instruction(Op.LUI, rt=8, imm=0x7)]

    def test_li_negative_large(self):
        prog = assemble(".text\nli t0, -65536\n")
        instrs = words(prog)
        assert [i.op for i in instrs] == [Op.LUI, Op.ORI]
        assert instrs[0].imm == 0xFFFF

    def test_la(self):
        prog = assemble(".text\nla t0, x\n.data\nx: .word 7\n")
        instrs = words(prog)
        assert [i.op for i in instrs] == [Op.LUI, Op.ORI]
        assert (instrs[0].imm << 16) | instrs[1].imm == DATA_BASE

    def test_mv_not_neg(self):
        prog = assemble(".text\nmv t0, t1\nnot t2, t3\nneg t4, t5\n")
        ops = [i.op for i in words(prog)]
        assert ops == [Op.OR, Op.NOR, Op.SUB]

    def test_branch_pseudos(self):
        prog = assemble(
            ".text\nx:\nbeqz t0, x\nbnez t0, x\nbltz t0, x\nbgez t0, x\n"
            "blez t0, x\nbgtz t0, x\nbgt t0, t1, x\nble t0, t1, x\n"
        )
        ops = [i.op for i in words(prog)]
        assert ops == [Op.BEQ, Op.BNE, Op.BLT, Op.BGE,
                       Op.BGE, Op.BLT, Op.BLT, Op.BGE]

    def test_bgt_swaps_operands(self):
        prog = assemble(".text\nx:\nbgt t0, t1, x\n")
        instr = words(prog)[0]
        assert (instr.rs, instr.rt) == (9, 8)

    def test_seqz_snez(self):
        prog = assemble(".text\nseqz t0, t1\nsnez t2, t3\n")
        ops = [i.op for i in words(prog)]
        assert ops == [Op.SLTIU, Op.SLTU]

    def test_nop(self):
        prog = assemble(".text\nnop\n")
        assert prog.text_words() == [0]

    def test_call_alias(self):
        prog = assemble(".text\nmain:\ncall main\n")
        assert words(prog)[0].op == Op.JAL


class TestDataDirectives:
    def test_word_values_and_labels(self):
        prog = assemble(
            ".text\nf:\nnop\n.data\ntab: .word 1, -2, f\n"
        )
        data = prog.data.data
        assert int.from_bytes(data[0:4], "little") == 1
        assert int.from_bytes(data[4:8], "little") == 0xFFFFFFFE
        assert int.from_bytes(data[8:12], "little") == TEXT_BASE

    def test_asciiz(self):
        prog = assemble('.data\ns: .asciiz "hi\\n"\n.text\nnop\n')
        assert prog.data.data == b"hi\n\0"

    def test_ascii_no_nul(self):
        prog = assemble('.data\ns: .ascii "ab"\n.text\nnop\n')
        assert prog.data.data == b"ab"

    def test_space(self):
        prog = assemble(".data\nbuf: .space 8\nx: .word 5\n.text\nnop\n")
        assert prog.symbols["x"] == DATA_BASE + 8

    def test_byte_and_half(self):
        prog = assemble(".data\nb: .byte 1, 2\nh: .half 0x1234\n.text\nnop\n")
        data = prog.data.data
        assert data[0:2] == b"\x01\x02"
        assert prog.symbols["h"] == DATA_BASE + 2
        assert int.from_bytes(data[2:4], "little") == 0x1234

    def test_word_alignment_after_bytes(self):
        prog = assemble(".data\nb: .byte 1\nw: .word 9\n.text\nnop\n")
        assert prog.symbols["w"] == DATA_BASE + 4
        assert int.from_bytes(prog.data.data[4:8], "little") == 9

    def test_align_directive(self):
        prog = assemble(".data\nb: .byte 1\n.align 3\nx: .word 2\n.text\nnop\n")
        assert prog.symbols["x"] == DATA_BASE + 8

    def test_string_with_comma_and_hash(self):
        prog = assemble('.data\ns: .asciiz "a,b#c"\n.text\nnop\n')
        assert prog.data.data == b"a,b#c\0"


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            ".text\nbogus t0, t1\n",
            ".text\nadd t0, t1\n",                # wrong arity
            ".text\nlw t0, t1\n",                 # bad mem operand
            ".text\nbeq t0, t1, nowhere\n",       # undefined symbol
            ".text\naddi t0, t0, 99999\n",        # imm out of range
            ".text\nmain:\nmain:\nnop\n",         # duplicate label
            ".word 5\n",                           # data directive in text
            ".text\n.entry missing\nnop\n",       # undefined entry
            '.data\ns: .asciiz "unterminated\n.text\nnop\n',
        ],
    )
    def test_bad_source(self, source):
        with pytest.raises(AssemblyError):
            assemble(source)

    def test_error_carries_line(self):
        try:
            assemble(".text\nnop\nbogus\n")
        except AssemblyError as exc:
            assert exc.line == 3
        else:  # pragma: no cover
            pytest.fail("expected AssemblyError")


from hypothesis import given, settings, strategies as st


@settings(max_examples=80, deadline=None)
@given(st.integers(-0x8000_0000, 0xFFFF_FFFF))
def test_li_loads_exact_value_property(value):
    """`li` must materialise any 32-bit constant exactly (1 or 2 instrs)."""
    from conftest import run_asm

    result = run_asm(
        f".text\nmain:\nli a0, {value}\nli v0, 1\nsyscall\n"
        "li v0, 10\nsyscall\n"
    )
    expected = value & 0xFFFFFFFF
    if expected & 0x8000_0000:
        expected -= 1 << 32
    assert result.output == str(expected)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, (1 << 32) - 4).map(lambda a: a & ~3))
def test_la_materialises_symbol_addresses(addr):
    """`la` of any label value round-trips through the register file."""
    # place a label artificially via .entry-independent symbol table
    from repro.isa.assembler import assemble as asm

    program = asm(
        ".text\nmain:\nla a0, main\nli v0, 1\nsyscall\nli v0, 10\nsyscall\n"
    )
    from repro.machine.interpreter import Interpreter

    result = Interpreter(program).run()
    assert int(result.output) == program.symbols["main"]
