"""Per-instruction semantics via tiny assembly programs."""

import pytest

from repro.isa.assembler import assemble
from repro.machine.errors import DivideByZeroFault, MemoryFault
from repro.machine.interpreter import Interpreter

from conftest import run_asm


def run_and_v0(body: str, inputs=None) -> int:
    """Run a snippet that leaves its result in v0; returns it signed."""
    source = (
        ".text\nmain:\n"
        + body
        + "\nmv a0, v0\nli v0, 1\nsyscall\nli v0, 10\nsyscall\n"
    )
    result = run_asm(source, inputs=inputs)
    return int(result.output)


class TestALU:
    def test_add_sub(self):
        assert run_and_v0("li t0, 7\nli t1, 5\nadd v0, t0, t1") == 12
        assert run_and_v0("li t0, 7\nli t1, 5\nsub v0, t0, t1") == 2

    def test_add_wraps_32bit(self):
        assert run_and_v0(
            "li t0, 0x7fffffff\nli t1, 1\nadd v0, t0, t1"
        ) == -2147483648

    def test_logical(self):
        assert run_and_v0("li t0, 0xf0\nli t1, 0x0f\nor v0, t0, t1") == 0xFF
        assert run_and_v0("li t0, 0xf0\nli t1, 0xff\nand v0, t0, t1") == 0xF0
        assert run_and_v0("li t0, 0xf0\nli t1, 0xff\nxor v0, t0, t1") == 0x0F
        assert run_and_v0("li t0, 0\nli t1, 0\nnor v0, t0, t1") == -1

    def test_slt_signed(self):
        assert run_and_v0("li t0, -1\nli t1, 1\nslt v0, t0, t1") == 1
        assert run_and_v0("li t0, 1\nli t1, -1\nslt v0, t0, t1") == 0

    def test_sltu_unsigned(self):
        # -1 is 0xffffffff unsigned: not < 1
        assert run_and_v0("li t0, -1\nli t1, 1\nsltu v0, t0, t1") == 0
        assert run_and_v0("li t0, 1\nli t1, -1\nsltu v0, t0, t1") == 1

    def test_immediates(self):
        assert run_and_v0("li t0, 10\naddi v0, t0, -3") == 7
        assert run_and_v0("li t0, 0xff\nandi v0, t0, 0x0f") == 0x0F
        assert run_and_v0("li t0, 0xf0\nori v0, t0, 0x0f") == 0xFF
        assert run_and_v0("li t0, 0xff\nxori v0, t0, 0xff") == 0
        assert run_and_v0("li t0, 4\nslti v0, t0, 5") == 1
        assert run_and_v0("li t0, -1\nsltiu v0, t0, 5") == 0

    def test_lui(self):
        assert run_and_v0("lui v0, 0x1234") == 0x12340000

    def test_mul(self):
        assert run_and_v0("li t0, -3\nli t1, 7\nmul v0, t0, t1") == -21

    def test_div_truncates_toward_zero(self):
        assert run_and_v0("li t0, 7\nli t1, 2\ndiv v0, t0, t1") == 3
        assert run_and_v0("li t0, -7\nli t1, 2\ndiv v0, t0, t1") == -3
        assert run_and_v0("li t0, 7\nli t1, -2\ndiv v0, t0, t1") == -3

    def test_rem_sign_follows_dividend(self):
        assert run_and_v0("li t0, 7\nli t1, 3\nrem v0, t0, t1") == 1
        assert run_and_v0("li t0, -7\nli t1, 3\nrem v0, t0, t1") == -1
        assert run_and_v0("li t0, 7\nli t1, -3\nrem v0, t0, t1") == 1

    def test_divide_by_zero_faults(self):
        prog = assemble(".text\nmain:\nli t0, 1\ndiv v0, t0, zero\n")
        with pytest.raises(DivideByZeroFault):
            Interpreter(prog).run()


class TestShifts:
    def test_immediate_shifts(self):
        assert run_and_v0("li t0, 1\nsll v0, t0, 4") == 16
        assert run_and_v0("li t0, 16\nsrl v0, t0, 2") == 4
        assert run_and_v0("li t0, -16\nsra v0, t0, 2") == -4
        assert run_and_v0("li t0, -16\nsrl v0, t0, 28") == 0xF

    def test_variable_shifts_rd_rs_rt_order(self):
        # rd = rs shifted by rt
        assert run_and_v0("li t0, 3\nli t1, 2\nsllv v0, t0, t1") == 12
        assert run_and_v0("li t0, 12\nli t1, 2\nsrlv v0, t0, t1") == 3
        assert run_and_v0("li t0, -12\nli t1, 2\nsrav v0, t0, t1") == -3

    def test_variable_shift_masks_to_5_bits(self):
        assert run_and_v0("li t0, 1\nli t1, 33\nsllv v0, t0, t1") == 2


class TestMemoryOps:
    def test_word(self):
        assert run_and_v0(
            "li t0, 0x12345678\nla t1, x\nsw t0, 0(t1)\nlw v0, 0(t1)\n"
            ".data\nx: .word 0\n.text"
        ) == 0x12345678

    def test_byte_sign_extension(self):
        assert run_and_v0(
            "li t0, 0x80\nla t1, x\nsb t0, 0(t1)\nlb v0, 0(t1)\n"
            ".data\nx: .word 0\n.text"
        ) == -128

    def test_byte_zero_extension(self):
        assert run_and_v0(
            "li t0, 0x80\nla t1, x\nsb t0, 0(t1)\nlbu v0, 0(t1)\n"
            ".data\nx: .word 0\n.text"
        ) == 128

    def test_half_sign_and_zero(self):
        assert run_and_v0(
            "li t0, 0x8000\nla t1, x\nsh t0, 0(t1)\nlh v0, 0(t1)\n"
            ".data\nx: .word 0\n.text"
        ) == -32768
        assert run_and_v0(
            "li t0, 0x8000\nla t1, x\nsh t0, 0(t1)\nlhu v0, 0(t1)\n"
            ".data\nx: .word 0\n.text"
        ) == 32768

    def test_negative_offset(self):
        assert run_and_v0(
            "la t1, y\nlw v0, -4(t1)\n"
            ".data\nx: .word 77\ny: .word 0\n.text"
        ) == 77


class TestControl:
    def test_branch_taken_and_not(self):
        assert run_and_v0(
            "li v0, 1\nli t0, 5\nli t1, 5\nbeq t0, t1, yes\nli v0, 0\nyes:"
        ) == 1
        assert run_and_v0(
            "li v0, 1\nli t0, 5\nli t1, 6\nbeq t0, t1, yes\nli v0, 0\nyes:"
        ) == 0

    def test_signed_vs_unsigned_branches(self):
        assert run_and_v0(
            "li v0, 0\nli t0, -1\nli t1, 1\nblt t0, t1, yes\nj no\n"
            "yes:\nli v0, 1\nno:"
        ) == 1
        assert run_and_v0(
            "li v0, 0\nli t0, -1\nli t1, 1\nbltu t0, t1, yes\nj no\n"
            "yes:\nli v0, 1\nno:"
        ) == 0

    def test_jal_sets_ra(self):
        result = run_and_v0("jal f\nj out\nf:\nmv v0, ra\nret\nout:")
        # ra = address of the instruction after jal (main+4)
        from repro.isa.program import TEXT_BASE
        assert result == TEXT_BASE + 4

    def test_jalr_writes_rd_then_jumps(self):
        # jalr with rs == rd still jumps to the *old* register value,
        # and the link lands in rd (t0), not ra
        assert run_and_v0(
            "la t0, f\njalr t0, t0\nj out\nf:\nli v0, 9\njr t0\nout:"
        ) == 9

    def test_jr_through_table(self):
        assert run_and_v0(
            "la t0, tab\nlw t1, 4(t0)\njr t1\n"
            "a:\nli v0, 10\nj out\n"
            "b:\nli v0, 20\nj out\n"
            "out:\n"
            ".data\ntab: .word a, b\n.text"
        ) == 20

    def test_fetch_outside_text_faults(self):
        prog = assemble(".text\nmain:\nli t0, 0x100\njr t0\n")
        with pytest.raises(MemoryFault):
            Interpreter(prog).run()


class TestZeroRegister:
    def test_writes_discarded(self):
        assert run_and_v0("li t0, 5\nadd zero, t0, t0\nmv v0, zero") == 0

    def test_jal_link_to_zero_via_jalr(self):
        # jalr zero, rs jumps without linking
        assert run_and_v0(
            "li v0, 3\nla t0, f\njalr zero, t0\nf:\nmv t5, zero"
        ) == 3
