"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.host.profile import SIMPLE
from repro.isa.assembler import assemble
from repro.lang import compile_to_program
from repro.machine.interpreter import Interpreter, RunResult
from repro.sdt.config import SDTConfig
from repro.sdt.vm import SDTRunResult, SDTVM


def run_asm(source: str, inputs: list[int] | None = None,
            fuel: int = 2_000_000) -> RunResult:
    """Assemble and interpret an SR32 program."""
    return Interpreter(assemble(source), inputs=inputs).run(fuel)


def run_minic(source: str, inputs: list[int] | None = None,
              fuel: int = 5_000_000) -> RunResult:
    """Compile and interpret a MiniC program."""
    return Interpreter(compile_to_program(source), inputs=inputs).run(fuel)


def run_minic_sdt(
    source: str,
    config: SDTConfig | None = None,
    inputs: list[int] | None = None,
    fuel: int = 5_000_000,
) -> SDTRunResult:
    """Compile and run a MiniC program under the SDT."""
    config = config or SDTConfig(profile=SIMPLE)
    return SDTVM(compile_to_program(source), config=config,
                 inputs=inputs).run(fuel)


def assert_equivalent(source: str, config: SDTConfig,
                      inputs: list[int] | None = None) -> SDTRunResult:
    """Assert the SDT reproduces the interpreter's behaviour exactly."""
    native = run_minic(source, inputs=inputs)
    translated = run_minic_sdt(source, config=config, inputs=inputs)
    assert translated.output == native.output
    assert translated.exit_code == native.exit_code
    assert translated.retired == native.retired
    return translated


@pytest.fixture
def simple_profile():
    return SIMPLE


@pytest.fixture
def no_faults(monkeypatch):
    """Pin fault injection off regardless of the REPRO_FAULTS environment.

    The chaos CI job runs this suite with ``REPRO_FAULTS=chaos:<seed>``;
    most tests pass unchanged because injected faults never alter
    architectural results.  Tests that assert *clean-spec* behaviour —
    exact hit rates, memo/disk-cache hits, cycle orderings — opt out via
    this fixture (module-wide with
    ``pytestmark = pytest.mark.usefixtures("no_faults")``).
    """
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


#: A MiniC program exercising every IB class: jump tables (ijump),
#: function-pointer dispatch (icall) and recursion (ret).
ALL_IB_KINDS_SOURCE = r"""
int ops[] = { &add3, &mul2 };

int add3(int x) { return x + 3; }
int mul2(int x) { return x * 2; }

int pick(int x) {
    switch (x & 7) {
    case 0: return 1;
    case 1: return 2;
    case 2: return 3;
    case 3: return 5;
    case 4: return 8;
    case 5: return 13;
    case 6: return 21;
    default: return 34;
    }
}

int sumto(int n) {
    if (n <= 0) return 0;
    return n + sumto(n - 1);
}

int main() {
    int total = 0;
    int i;
    for (i = 0; i < 24; i++) {
        int f = ops[i & 1];
        total += f(i) + pick(i);
    }
    total += sumto(10);
    print_int(total);
    return 0;
}
"""
