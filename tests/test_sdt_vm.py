"""SDT VM: execution equivalence, linking, flushes, accounting."""

import pytest

from conftest import ALL_IB_KINDS_SOURCE, assert_equivalent, run_minic, run_minic_sdt
from repro.host.costs import Category
from repro.host.profile import SIMPLE
from repro.isa.assembler import assemble
from repro.lang import compile_to_program
from repro.machine.errors import FuelExhausted
from repro.sdt.config import SDTConfig
from repro.sdt.vm import SDTVM


def all_configs():
    return [
        SDTConfig(profile=SIMPLE, ib="reentry"),
        SDTConfig(profile=SIMPLE, ib="ibtc"),
        SDTConfig(profile=SIMPLE, ib="ibtc", ibtc_shared=False,
                  ibtc_entries=8),
        SDTConfig(profile=SIMPLE, ib="sieve", sieve_buckets=32),
        SDTConfig(profile=SIMPLE, ib="ibtc", returns="fast"),
        SDTConfig(profile=SIMPLE, ib="ibtc", returns="shadow"),
        SDTConfig(profile=SIMPLE, ib="ibtc", returns="retcache"),
        SDTConfig(profile=SIMPLE, ib="sieve", returns="fast"),
        SDTConfig(profile=SIMPLE, ib="reentry", linking=False),
    ]


class TestEquivalence:
    @pytest.mark.parametrize(
        "config", all_configs(), ids=lambda c: c.label
    )
    def test_all_ib_kinds_program(self, config):
        assert_equivalent(ALL_IB_KINDS_SOURCE, config)

    def test_inputs_flow_through(self):
        source = "int main() { print_int(read_int() * 2); return 0; }"
        result = run_minic_sdt(source, inputs=[21])
        assert result.output == "42"

    def test_exit_code_preserved(self):
        result = run_minic_sdt("int main() { exit(9); return 0; }")
        assert result.exit_code == 9

    def test_mid_fragment_exit(self):
        # exit() inside a basic block must stop before the block ends
        native = run_minic("int main() { exit(1); print_int(7); return 0; }")
        translated = run_minic_sdt(
            "int main() { exit(1); print_int(7); return 0; }"
        )
        assert translated.output == native.output == ""
        assert translated.retired == native.retired


class TestLinking:
    SOURCE = """
    int main() {
        int i;
        int s = 0;
        for (i = 0; i < 100; i++) s += i;
        print_int(s);
        return 0;
    }
    """

    def test_linking_eliminates_reentries(self):
        linked = run_minic_sdt(self.SOURCE, SDTConfig(profile=SIMPLE))
        unlinked = run_minic_sdt(
            self.SOURCE, SDTConfig(profile=SIMPLE, linking=False)
        )
        assert linked.stats.translator_reentries < 30
        assert unlinked.stats.translator_reentries > 200
        assert unlinked.total_cycles > linked.total_cycles

    def test_each_exit_linked_once(self):
        result = run_minic_sdt(self.SOURCE, SDTConfig(profile=SIMPLE))
        # links patched is bounded by (fragments x exits), not executions
        assert result.stats.links_patched <= \
            2 * result.stats.fragments_translated

    def test_link_cycles_charged(self):
        result = run_minic_sdt(self.SOURCE, SDTConfig(profile=SIMPLE))
        assert result.cycles[Category.LINK.value] == \
            result.stats.links_patched * SIMPLE.link_patch


class TestFragmentCachePressure:
    def test_tiny_cache_flushes_and_still_correct(self):
        config = SDTConfig(profile=SIMPLE, fragment_cache_bytes=512)
        result = assert_equivalent(ALL_IB_KINDS_SOURCE, config)
        assert result.stats.cache_flushes > 0

    def test_tiny_cache_with_fast_returns(self):
        config = SDTConfig(
            profile=SIMPLE, fragment_cache_bytes=512, returns="fast"
        )
        result = assert_equivalent(ALL_IB_KINDS_SOURCE, config)
        assert result.stats.cache_flushes > 0

    def test_short_fragments_still_correct(self):
        config = SDTConfig(profile=SIMPLE, max_fragment_instrs=2)
        assert_equivalent(ALL_IB_KINDS_SOURCE, config)


class TestAccounting:
    def test_app_cycles_equal_native_cycles(self):
        """The APP category must equal the native baseline's class costs.

        Both engines execute the same retired instruction stream, so any
        difference would mean the SDT is charging application work wrong.
        """
        from repro.host.costs import HostModel, NativeCostObserver
        from repro.machine.interpreter import Interpreter

        program = compile_to_program(ALL_IB_KINDS_SOURCE)
        model = HostModel(SIMPLE)
        Interpreter(program, observer=NativeCostObserver(model)).run()
        native_app = model.cycles[Category.APP]

        result = run_minic_sdt(ALL_IB_KINDS_SOURCE, SDTConfig(profile=SIMPLE))
        assert result.cycles[Category.APP.value] == native_app

    def test_total_is_sum_of_breakdown(self):
        result = run_minic_sdt(ALL_IB_KINDS_SOURCE, SDTConfig(profile=SIMPLE))
        assert result.total_cycles == sum(result.cycles.values())

    def test_ib_dispatch_counts_match_iclass_counts(self):
        from repro.isa.opcodes import InstrClass

        result = run_minic_sdt(ALL_IB_KINDS_SOURCE, SDTConfig(profile=SIMPLE))
        assert result.stats.ib_dispatches["ret"] == \
            result.iclass_counts[InstrClass.RET]
        assert result.stats.ib_dispatches["icall"] == \
            result.iclass_counts[InstrClass.ICALL]
        assert result.stats.ib_dispatches["ijump"] == \
            result.iclass_counts[InstrClass.IJUMP]

    def test_overhead_vs(self):
        result = run_minic_sdt("int main() { return 0; }",
                               SDTConfig(profile=SIMPLE))
        assert result.overhead_vs(result.total_cycles) == 1.0
        with pytest.raises(ValueError):
            result.overhead_vs(0)


class TestFuel:
    def test_infinite_loop_detected(self):
        program = assemble(".text\nmain:\nloop:\nj loop\n")
        vm = SDTVM(program, SDTConfig(profile=SIMPLE))
        with pytest.raises(FuelExhausted):
            vm.run(fuel=1000)


class TestConfigValidation:
    def test_bad_mechanism_rejected(self):
        with pytest.raises(ValueError):
            SDTConfig(ib="oracle")

    def test_bad_return_scheme_rejected(self):
        with pytest.raises(ValueError):
            SDTConfig(returns="magic")

    def test_labels(self):
        assert SDTConfig(ib="ibtc", ibtc_entries=64).label == \
            "ibtc(shared,64)"
        assert SDTConfig(ib="sieve", sieve_buckets=32).label == "sieve(32)"
        assert "nolink" in SDTConfig(ib="reentry", linking=False).label
        assert "ret=fast" in SDTConfig(returns="fast").label

    def test_with_profile(self):
        from repro.host.profile import X86_K8

        config = SDTConfig(ib="sieve").with_profile(X86_K8)
        assert config.profile is X86_K8
        assert config.ib == "sieve"


class TestExtremeConfigs:
    def test_single_instruction_fragments(self):
        """max_fragment_instrs=1: every instruction is its own fragment."""
        config = SDTConfig(profile=SIMPLE, max_fragment_instrs=1)
        result = assert_equivalent(ALL_IB_KINDS_SOURCE, config)
        # fragments hold exactly one instruction each
        assert result.stats.instrs_translated == \
            result.stats.fragments_translated

    def test_single_instruction_fragments_with_traces(self):
        config = SDTConfig(profile=SIMPLE, max_fragment_instrs=1,
                           trace_jumps=True)
        assert_equivalent(ALL_IB_KINDS_SOURCE, config)

    def test_every_feature_at_once(self):
        config = SDTConfig(
            profile=SIMPLE,
            ib="sieve",
            sieve_buckets=8,
            inline_predict=True,
            returns="shadow",
            shadow_depth=4,
            trace_jumps=True,
            fragment_cache_bytes=600,
            max_fragment_instrs=16,
        )
        result = assert_equivalent(ALL_IB_KINDS_SOURCE, config)
        assert result.stats.cache_flushes > 0
