"""Request protocol: strict validation, cell identity, family strings."""

import pytest

from repro.eval.cells import measure_cell, native_cell
from repro.eval.runner import DEFAULT_FUEL
from repro.host.profile import get_profile
from repro.sdt.config import SDTConfig
from repro.serve.protocol import (
    CONFIG_FIELDS,
    MAX_DEADLINE,
    ProtocolError,
    parse_request,
)

pytestmark = pytest.mark.usefixtures("no_faults")


def _measure_payload(**overrides):
    payload = {"kind": "measure", "workload": "gzip_like",
               "scale": "tiny", "config": {"ib": "ibtc"}}
    payload.update(overrides)
    return payload


class TestParsing:
    def test_minimal_measure_request(self):
        request = parse_request({"workload": "gzip_like"})
        assert request.cell.kind == "measure"
        assert request.cell.fuel == DEFAULT_FUEL
        assert request.deadline is None

    def test_key_matches_the_batch_executor_cell(self):
        request = parse_request(_measure_payload(fuel=12345))
        config = SDTConfig(profile=get_profile("simple"), ib="ibtc")
        expected = measure_cell("gzip_like", "tiny", config, fuel=12345)
        assert request.key == expected.key()

    def test_native_cell(self):
        request = parse_request({"kind": "native", "workload": "mcf_like",
                                 "scale": "tiny"})
        expected = native_cell("mcf_like", "tiny", get_profile("simple"),
                               fuel=DEFAULT_FUEL)
        assert request.key == expected.key()

    def test_canonical_payload_round_trips(self):
        request = parse_request(_measure_payload(deadline=5.0))
        again = parse_request(request.payload)
        assert again.key == request.key
        assert again.payload == request.payload

    def test_canonical_payload_sorts_config_keys(self):
        request = parse_request(_measure_payload(
            config={"returns": "shadow", "ib": "sieve"}))
        assert list(request.payload["config"]) == ["ib", "returns"]


class TestFamilies:
    def test_family_excludes_fuel(self):
        a = parse_request(_measure_payload(fuel=100))
        b = parse_request(_measure_payload(fuel=10**9))
        assert a.family == b.family
        assert a.key != b.key

    def test_family_distinguishes_configs(self):
        a = parse_request(_measure_payload(config={"ib": "ibtc"}))
        b = parse_request(_measure_payload(config={"ib": "sieve"}))
        assert a.family != b.family

    def test_family_kinds_are_disjoint(self):
        measure = parse_request(_measure_payload())
        native = parse_request({"kind": "native", "workload": "gzip_like"})
        fanout = parse_request({"kind": "fanout", "workload": "gzip_like"})
        assert len({measure.family, native.family, fanout.family}) == 3


class TestRejection:
    @pytest.mark.parametrize("payload", [
        None,
        [],
        "text",
        {},                                        # workload missing
        {"workload": "no_such_workload"},
        {"workload": "gzip_like", "kind": "bogus"},
        {"workload": "gzip_like", "scale": "huge"},
        {"workload": "gzip_like", "fuel": 0},
        {"workload": "gzip_like", "fuel": True},
        {"workload": "gzip_like", "fuel": "lots"},
        {"workload": "gzip_like", "fuel": 10**13},
        {"workload": "gzip_like", "profile": "no_such_profile"},
        {"workload": "gzip_like", "deadline": 0},
        {"workload": "gzip_like", "deadline": -1.0},
        {"workload": "gzip_like", "deadline": MAX_DEADLINE + 1},
        {"workload": "gzip_like", "deadline": "soon"},
        {"workload": "gzip_like", "config": "ibtc"},
        {"workload": "gzip_like", "surprise": 1},
        {"workload": "gzip_like", "kind": "native", "config": {"ib": "ibtc"}},
        {"workload": "gzip_like", "kind": "fanout", "config": {"ib": "ibtc"}},
    ])
    def test_malformed_payloads(self, payload):
        with pytest.raises(ProtocolError):
            parse_request(payload)

    @pytest.mark.parametrize("fieldname", ["engine", "faults", "trace",
                                           "profile", "nonsense"])
    def test_daemon_level_config_fields_rejected(self, fieldname):
        assert fieldname not in CONFIG_FIELDS
        with pytest.raises(ProtocolError):
            parse_request(_measure_payload(config={fieldname: "x"}))

    def test_invalid_config_value_is_client_safe(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(_measure_payload(config={"ib": "bogus"}))
        assert "invalid config" in str(excinfo.value)
