"""Measurement runner: baselines, verification, caching."""

import pytest

from repro.eval.runner import (
    DivergenceError,
    Measurement,
    clear_caches,
    measure,
    run_native,
)
from repro.host.profile import SIMPLE, X86_P4
from repro.sdt.config import SDTConfig
from repro.workloads import get_workload

#: memoisation assertions require fault-free (cacheable) measurements
pytestmark = pytest.mark.usefixtures("no_faults")


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestNativeBaseline:
    def test_baseline_fields(self):
        base = run_native("gzip_like", SIMPLE, scale="tiny")
        assert base.workload == "gzip_like"
        assert base.retired > 0
        assert base.cycles > base.retired  # loads cost 2+
        assert base.exit_code == 0
        assert base.indirect_branches == base.ijumps + base.icalls + base.rets

    def test_cached_by_profile(self):
        first = run_native("gzip_like", SIMPLE, scale="tiny")
        second = run_native("gzip_like", SIMPLE, scale="tiny")
        assert first is second
        other = run_native("gzip_like", X86_P4, scale="tiny")
        assert other is not first

    def test_accepts_workload_object(self):
        workload = get_workload("mcf_like", "tiny")
        base = run_native(workload, SIMPLE, scale="tiny")
        assert base.workload == "mcf_like"


class TestMeasure:
    def test_measurement_fields(self):
        result = measure("eon_like", SDTConfig(profile=SIMPLE), scale="tiny")
        assert isinstance(result, Measurement)
        assert result.overhead > 1.0
        assert result.sdt_cycles > result.native_cycles
        assert result.breakdown["app"] > 0
        assert "ibtc-shared-4096" in result.hit_rates

    def test_measurement_cached(self):
        config = SDTConfig(profile=SIMPLE)
        first = measure("eon_like", config, scale="tiny")
        second = measure("eon_like", config, scale="tiny")
        assert first is second

    def test_distinct_configs_not_conflated(self):
        small = measure(
            "eon_like",
            SDTConfig(profile=SIMPLE, ib="ibtc", ibtc_entries=16),
            scale="tiny",
        )
        large = measure(
            "eon_like",
            SDTConfig(profile=SIMPLE, ib="ibtc", ibtc_entries=4096),
            scale="tiny",
        )
        assert small is not large

    def test_ib_overhead_cycles_subset_of_total(self):
        result = measure("perl_like", SDTConfig(profile=SIMPLE), scale="tiny")
        assert 0 < result.ib_overhead_cycles < result.sdt_cycles

    def test_divergence_detected(self):
        """A config whose run diverges from the baseline must raise."""
        from repro.eval import runner as runner_module
        from repro.eval.runner import DEFAULT_FUEL

        config = SDTConfig(profile=SIMPLE)
        baseline = run_native("gzip_like", SIMPLE, scale="tiny")
        broken = baseline.__class__(**{
            **baseline.__dict__, "output": baseline.output + "tampered",
        })
        key = ("gzip_like", "tiny", DEFAULT_FUEL, SIMPLE.fingerprint())
        runner_module._NATIVE_CACHE[key] = broken
        with pytest.raises(DivergenceError):
            measure("gzip_like", config, scale="tiny")


class TestFuelKeying:
    """Regression: fuel is part of every cache key.

    Before the fix, `_NATIVE_CACHE`/`_MEASURE_CACHE` keys omitted fuel, so
    a short-fuel run populated the cell and later full-fuel callers were
    silently served its (potentially truncated) cycle counts.
    """

    def test_native_runs_at_different_fuels_are_distinct(self):
        generous = run_native("gzip_like", SIMPLE, scale="tiny")
        tighter = run_native("gzip_like", SIMPLE, scale="tiny",
                             fuel=generous.retired + 1)
        assert tighter is not generous
        # and the original fuel still maps to its own cached entry
        assert run_native("gzip_like", SIMPLE, scale="tiny") is generous

    def test_measurements_at_different_fuels_are_distinct(self):
        config = SDTConfig(profile=SIMPLE)
        full = measure("eon_like", config, scale="tiny")
        short = measure("eon_like", config, scale="tiny",
                        fuel=full.native_cycles * 10)
        assert short is not full
        assert measure("eon_like", config, scale="tiny") is full

    def test_exhausted_fuel_never_caches_a_truncated_run(self):
        from repro.machine.errors import FuelExhausted

        with pytest.raises(FuelExhausted):
            run_native("gzip_like", SIMPLE, scale="tiny", fuel=10)
        # the failed short-fuel attempt must not have poisoned anything
        base = run_native("gzip_like", SIMPLE, scale="tiny")
        assert base.exit_code == 0


class TestOverheadGuard:
    def test_zero_native_cycles_raises_value_error_naming_cell(self):
        broken = Measurement(
            workload="gzip_like", scale="tiny", profile="simple",
            config_label="ibtc(shared,4096)", native_cycles=0,
            sdt_cycles=123, breakdown={}, stats={}, hit_rates={},
        )
        with pytest.raises(ValueError, match=r"gzip_like/tiny/simple"):
            broken.overhead

    def test_positive_native_cycles_still_divide(self):
        healthy = Measurement(
            workload="gzip_like", scale="tiny", profile="simple",
            config_label="x", native_cycles=100,
            sdt_cycles=250, breakdown={}, stats={}, hit_rates={},
        )
        assert healthy.overhead == 2.5
