"""Code-cache coherence: self-modifying / dyn-load / mini-JIT guests.

The acceptance bar for the coherence subsystem (docs/robustness.md):
every scenario stays byte-identical to the reference interpreter under
every invalidation policy, mechanism and engine, with the invariant
checker reporting zero stale-fragment violations — including when the
chaos CI job re-runs this file under ``REPRO_FAULTS=chaos:1234``.
"""

import pytest

from repro.machine.interpreter import run_program
from repro.sdt.config import COHERENCE_POLICIES, SDTConfig
from repro.sdt.vm import SDTVM
from repro.workloads import (
    COHERENCE_WORKLOADS,
    coherence_suite,
    get_coherence_workload,
)

CHAOS = "chaos:1234"
MECHANISMS = ("reentry", "ibtc", "sieve")
POLICIES = ("flush", "page", "targeted")

#: reference-interpreter goldens at tiny scale (checksum, retired count);
#: pinned so a workload edit cannot silently change what "parity" means
GOLDEN = {
    "smc_loop": ("36", 134),
    "dyn_loader": ("128", 474),
    "mini_jit": ("36", 96),
}


def reference(name, scale="tiny"):
    return run_program(get_coherence_workload(name, scale).compile())


def run_sdt(name, scale="tiny", **kwargs):
    program = get_coherence_workload(name, scale).compile()
    vm = SDTVM(program, config=SDTConfig(**kwargs))
    return vm, vm.run()


def assert_parity(result, expected, context):
    assert result.output == expected.output, context
    assert result.exit_code == expected.exit_code, context
    assert result.retired == expected.retired, context


class TestReferenceInterpreter:
    """The oracle interpreter itself handles self-modifying code."""

    @pytest.mark.parametrize("name", COHERENCE_WORKLOADS)
    def test_golden_outputs(self, name):
        result = reference(name)
        output, retired = GOLDEN[name]
        assert result.output == output
        assert result.exit_code == 0
        assert result.retired == retired

    def test_suite_enumeration(self):
        suite = coherence_suite("tiny")
        assert tuple(w.name for w in suite) == COHERENCE_WORKLOADS
        assert all(w.language == "asm" for w in suite)
        with pytest.raises(KeyError):
            get_coherence_workload("nonexistent", "tiny")


class TestScenarioParity:
    """SDT == interpreter for every scenario x policy x mechanism.

    Runs under whatever REPRO_FAULTS the environment sets — the chaos CI
    job re-executes exactly this matrix with fault injection on.
    """

    @pytest.mark.parametrize("name", COHERENCE_WORKLOADS)
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_parity(self, name, policy, mechanism):
        expected = reference(name)
        _, result = run_sdt(name, ib=mechanism, coherence=policy)
        assert_parity(result, expected, f"{name}/{mechanism}/coh={policy}")

    @pytest.mark.parametrize("name", COHERENCE_WORKLOADS)
    @pytest.mark.parametrize("engine", ("oracle", "threaded"))
    def test_engine_parity(self, name, engine):
        expected = reference(name)
        _, result = run_sdt(name, coherence="targeted", engine=engine)
        assert_parity(result, expected, f"{name}/engine={engine}")

    @pytest.mark.parametrize("returns", ("fast", "shadow", "retcache"))
    def test_return_scheme_parity(self, returns):
        expected = reference("smc_loop")
        _, result = run_sdt("smc_loop", coherence="page", returns=returns)
        assert_parity(result, expected, f"smc_loop/ret={returns}")

    def test_none_policy_executes_stale_code(self):
        """Without write detection the SMC loop goes architecturally
        wrong — proof the scenarios actually exercise coherence."""
        expected = reference("smc_loop")
        _, result = run_sdt("smc_loop", coherence="none")
        assert result.output != expected.output


class TestStaleDecodeRegression:
    """Unwatching a page must drop its cached decodes.

    Regression pin: whole-cache flush (and selective invalidation that
    empties a page) unwatches translated pages; dyn_loader's copy loop
    keeps storing into the unwatched page, and the translator's decode
    cache used to keep serving the pre-store instructions on
    retranslation — mixing fresh memory words with stale decodes.
    ``targeted`` masked the bug because the page stayed watched.
    """

    @pytest.mark.parametrize("policy", ("flush", "page"))
    def test_dyn_loader_survives_unwatch(self, policy):
        expected = reference("dyn_loader")
        _, result = run_sdt("dyn_loader", coherence=policy)
        assert_parity(result, expected, f"dyn_loader/coh={policy}")

    @pytest.mark.parametrize("name", COHERENCE_WORKLOADS)
    def test_capacity_flush_interleaving(self, name):
        """Capacity flushes unwatch pages mid-scenario too: a tiny cache
        forces them between (and during) guest write bursts."""
        expected = reference(name)
        for policy in POLICIES:
            _, result = run_sdt(name, coherence=policy,
                                fragment_cache_bytes=512)
            assert_parity(result, expected, f"{name}/{policy}/cap=512")


class TestInvariantChecker:
    """Chaos runs: the checker's coherence site fires and stays clean."""

    @pytest.mark.parametrize("name", COHERENCE_WORKLOADS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_zero_violations(self, name, policy):
        expected = reference(name)
        vm, result = run_sdt(name, coherence=policy, faults=CHAOS,
                             fragment_cache_bytes=2048)
        assert_parity(result, expected, f"{name}/coh={policy}/{CHAOS}")
        report = vm.invariant_checker.report()
        assert report["violations"] == []
        if policy == "flush":
            assert report["flushes_checked"] > 0
        else:
            # selective invalidations must reach the checker's
            # on_invalidate site, not just the flush hook
            assert report["invalidations_checked"] > 0

    def test_checker_runs_after_scrub(self):
        """Hook-ordering pin: the checker registers last, so its walk
        observes the mechanisms' *post-scrub* state.  If the coherence
        manager (or the mechanisms) registered after the checker, every
        guest-write flush would report the just-killed fragments as
        stale references and this run would record violations."""
        vm, _ = run_sdt("smc_loop", coherence="flush", faults=CHAOS)
        report = vm.invariant_checker.report()
        assert report["flushes_checked"] > 0
        assert report["violations"] == []


class TestStaticTargetsInteraction:
    """Preseed flush-window regression (satellite: pending-hint scrub).

    With static targets on, IBTC/sieve preseed hints are armed when the
    analysis binds and applied as fragments materialise; an invalidation
    landing inside that window must not let a hint resurrect a pointer
    to dead code.  A 512-byte cache makes every translation race a flush.
    """

    @pytest.mark.parametrize("name", COHERENCE_WORKLOADS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_parity_with_static_targets(self, name, policy):
        expected = reference(name)
        for mechanism in ("ibtc", "sieve"):
            vm, result = run_sdt(
                name, ib=mechanism, coherence=policy, static_targets=True,
                fragment_cache_bytes=512, faults=CHAOS,
            )
            assert_parity(
                result, expected,
                f"{name}/{mechanism}/coh={policy}/static+cap=512",
            )
            assert vm.invariant_checker.report()["violations"] == []


@pytest.mark.usefixtures("no_faults")
class TestPolicyCost:
    """Clean-spec cost separation and event accounting."""

    def test_policy_cost_ordering(self):
        # smc_loop shares a page between the patched site and an
        # untouched helper: flush kills everything, page kills the
        # helper too, targeted kills only the patched fragment
        cycles = {}
        for policy in POLICIES:
            _, result = run_sdt("smc_loop", ib="ibtc", coherence=policy)
            cycles[policy] = result.total_cycles
        assert cycles["flush"] > cycles["page"] > cycles["targeted"]

    def test_write_detection_off_by_default(self):
        from repro.workloads import get_workload

        vm, _ = run_sdt("smc_loop", coherence="targeted")
        assert vm.stats.coherence["code_writes"] > 0
        # a static workload under the default policy pays nothing: no
        # manager, no watched pages, no events
        program = get_workload("gzip_like", "tiny").compile()
        vm_none = SDTVM(program, config=SDTConfig())
        vm_none.run()
        assert vm_none.coherence is None
        assert dict(vm_none.stats.coherence) == {}
        assert vm_none.mem.watched_pages() == frozenset()

    def test_stats_per_policy(self):
        vm, _ = run_sdt("smc_loop", coherence="flush")
        stats = vm.stats.coherence
        assert stats["code_writes"] > 0
        assert stats["flushes"] == stats["code_writes"]

        vm, _ = run_sdt("smc_loop", coherence="targeted")
        stats = vm.stats.coherence
        assert stats["fragments_invalidated"] > 0
        assert stats["flushes"] == 0

    def test_trace_events_emitted(self):
        vm, _ = run_sdt("smc_loop", coherence="targeted", trace="on")
        kinds = {kind for _seq, _cycles, kind, _data in vm.trace.events}
        assert "coherence.write" in kinds
        assert "coherence.invalidate" in kinds


class TestConfigSurface:
    """Policy validation, label and fingerprint relevance."""

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="coherence"):
            SDTConfig(coherence="eager")

    def test_label(self):
        assert "coh=page" in SDTConfig(coherence="page").label
        assert "coh=" not in SDTConfig(coherence="none").label

    def test_fingerprint_relevant(self):
        # the policy decides which fragments survive a guest write, so
        # it must split result caches (it is NOT fingerprint-exempt)
        assert SDTConfig(coherence="none").fingerprint() != \
            SDTConfig(coherence="targeted").fingerprint()

    def test_all_policies_enumerated(self):
        assert COHERENCE_POLICIES == ("none",) + POLICIES
