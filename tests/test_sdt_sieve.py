"""Sieve mechanism: chain growth, policies, cost structure."""

import pytest

from conftest import run_minic_sdt
from repro.host.costs import Category
from repro.host.profile import SIMPLE
from repro.sdt.config import SDTConfig
from repro.sdt.ib.sieve import Sieve, sieve_index

from test_sdt_ibtc import dispatch_source

#: exact chain-growth dynamics are clean-spec behaviour
pytestmark = pytest.mark.usefixtures("no_faults")


def run_sieve(source: str, buckets: int = 64, policy: str = "prepend"):
    config = SDTConfig(profile=SIMPLE, ib="sieve", sieve_buckets=buckets,
                       sieve_policy=policy)
    return run_minic_sdt(source, config)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            Sieve(buckets=0)
        with pytest.raises(ValueError):
            Sieve(buckets=48)
        with pytest.raises(ValueError):
            Sieve(policy="random")

    def test_hash_matches_ibtc_folding(self):
        from repro.sdt.ib.ibtc import ibtc_index

        for addr in range(0x400000, 0x400100, 4):
            assert sieve_index(addr, 63) == ibtc_index(addr, 63)


class TestDynamics:
    def test_first_dispatch_misses_then_hits(self):
        result = run_sieve(dispatch_source(1, iterations=100))
        stats = result.stats
        name = "sieve-64"
        assert stats.mechanism[f"{name}.miss"] <= 4
        assert stats.mechanism[f"{name}.hit"] > 150

    def test_chain_walk_cost_grows_with_collisions(self):
        """With 1 bucket every target chains in one list: stage executions
        far exceed dispatches; with many buckets they spread out."""
        source = dispatch_source(8, iterations=240)
        one_bucket = run_sieve(source, buckets=1)
        many_buckets = run_sieve(source, buckets=256)
        assert one_bucket.cycles[Category.SIEVE.value] > \
            many_buckets.cycles[Category.SIEVE.value]
        assert one_bucket.output == many_buckets.output

    def test_miss_inserts_stub(self):
        result = run_sieve(dispatch_source(4, iterations=100))
        name = "sieve-64"
        # every chain-exhaustion miss re-enters the translator
        assert result.stats.translator_reentries >= \
            result.stats.mechanism[f"{name}.miss"]

    @pytest.mark.parametrize("policy", ["prepend", "append"])
    def test_policies_both_correct(self, policy):
        from conftest import run_minic

        source = dispatch_source(6, iterations=120)
        result = run_sieve(source, buckets=4, policy=policy)
        assert result.output == run_minic(source).output

    def test_prepend_mru_beats_append_for_skewed_targets(self):
        """A skewed target distribution favours MRU-prepended stubs."""
        source = """
        int hot(int x) { return x + 1; }
        int cold0(int x) { return x; }
        int cold1(int x) { return x; }
        int cold2(int x) { return x; }
        int cold3(int x) { return x; }
        int tab[] = { &cold0, &cold1, &cold2, &cold3, &hot };
        int main() {
            int total = 0;
            int i;
            /* touch the cold targets first so they head the chain under
               append; then hammer the hot one */
            for (i = 0; i < 4; i++) { int f = tab[i]; total += f(i); }
            for (i = 0; i < 300; i++) { int f = tab[4]; total += f(i); }
            print_int(total);
            return 0;
        }
        """
        # single bucket forces all targets into one chain
        prepend = run_sieve(source, buckets=1, policy="prepend")
        append = run_sieve(source, buckets=1, policy="append")
        assert prepend.cycles[Category.SIEVE.value] < \
            append.cycles[Category.SIEVE.value]
        assert prepend.output == append.output


class TestFlush:
    def test_flush_clears_chains(self):
        sieve = Sieve(buckets=4)
        sieve._chains[0].append((0x1000, object()))
        sieve.on_flush()
        assert all(not chain for chain in sieve._chains)

    def test_mean_chain_length(self):
        sieve = Sieve(buckets=4)
        assert sieve.mean_chain_length == 0.0
        sieve._chains[0].extend([(1, None), (2, None)])
        sieve._chains[1].append((3, None))
        assert sieve.mean_chain_length == 1.5
