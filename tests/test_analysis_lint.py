"""Lint engine and shipped checks (repro.analysis.lint)."""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import LINT_CHECKS, run_lint
from repro.isa.assembler import assemble
from repro.lang import compile_to_program
from repro.workloads import get_workload, workload_names

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples" / "guest").glob("*.mc")
)


def lint_asm(source: str):
    return run_lint(assemble(source))


class TestGolden:
    """Everything the toolchain ships must be lint-clean."""

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_guest_examples_clean(self, path):
        report = run_lint(compile_to_program(path.read_text()))
        assert report.clean, report.format()

    @pytest.mark.parametrize("name", workload_names())
    def test_workloads_clean(self, name):
        program = get_workload(name, "tiny").compile()
        report = run_lint(program)
        assert report.clean, report.format()


class TestUnreachableCode:
    def test_dead_block_reported(self):
        report = lint_asm(".text\nmain:\nhalt\nnop\nnop\n")
        findings = report.by_check("unreachable-code")
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert "2 unreachable" in findings[0].message

    def test_labelled_function_is_a_root(self):
        # an exported label nothing calls is not "unreachable"
        report = lint_asm(".text\nmain:\nhalt\nspare:\nhalt\n")
        assert report.by_check("unreachable-code") == []

    def test_jump_table_targets_are_reachable(self):
        source = """
.text
main:
    li    t0, 1
    sltiu t9, t0, 2
    beq   t9, zero, default
    sll   t8, t0, 2
    la    t9, table
    add   t8, t8, t9
    lw    t8, 0(t8)
    jr    t8
.Lcase0:
    halt
.Lcase1:
    halt
default:
    halt
.data
table: .word .Lcase0, .Lcase1
"""
        report = lint_asm(source)
        assert report.by_check("unreachable-code") == []


class TestTextFallthrough:
    def test_fall_off_end_of_text(self):
        report = lint_asm(".text\nmain:\nnop\n")
        findings = report.by_check("text-fallthrough")
        assert len(findings) == 1
        assert findings[0].severity == "error"

    def test_halt_terminated_program_clean(self):
        report = lint_asm(".text\nmain:\nnop\nhalt\n")
        assert report.by_check("text-fallthrough") == []


class TestClobberedLinkRegister:
    def test_leaf_call_then_return(self):
        # f calls g without saving ra, then returns through the stale ra
        report = lint_asm(
            ".text\nmain:\njal f\nhalt\nf:\njal g\njr ra\ng:\njr ra\n"
        )
        findings = report.by_check("clobbered-link-register")
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert findings[0].function == "f"

    def test_save_restore_is_clean(self):
        report = lint_asm(
            ".text\n"
            "main:\n"
            "    jal f\n"
            "    halt\n"
            "f:\n"
            "    addi sp, sp, -4\n"
            "    sw   ra, 0(sp)\n"
            "    jal  g\n"
            "    lw   ra, 0(sp)\n"
            "    addi sp, sp, 4\n"
            "    jr   ra\n"
            "g:\n"
            "    jr ra\n"
        )
        assert report.by_check("clobbered-link-register") == []


class TestStackImbalance:
    def test_unbalanced_prologue(self):
        report = lint_asm(
            ".text\nmain:\njal f\nhalt\nf:\naddi sp, sp, -8\njr ra\n"
        )
        findings = report.by_check("stack-imbalance")
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert "-8" in findings[0].message

    def test_balanced_frame_clean(self):
        report = lint_asm(
            ".text\nmain:\njal f\nhalt\n"
            "f:\naddi sp, sp, -8\naddi sp, sp, 8\njr ra\n"
        )
        assert report.by_check("stack-imbalance") == []


class TestZeroRegisterWrite:
    def test_write_to_zero_reported(self):
        report = lint_asm(".text\nmain:\naddi zero, zero, 1\nhalt\n")
        findings = report.by_check("zero-register-write")
        assert len(findings) == 1
        assert findings[0].severity == "warning"

    def test_canonical_nop_exempt(self):
        report = lint_asm(".text\nmain:\nnop\nhalt\n")
        assert report.by_check("zero-register-write") == []


class TestStoreToText:
    def test_store_through_text_constant(self):
        report = lint_asm(
            ".text\nmain:\nla t0, main\nsw t1, 0(t0)\nhalt\n"
        )
        findings = report.by_check("store-to-text")
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "self-modifying" in findings[0].message

    def test_store_to_data_clean(self):
        report = lint_asm(
            ".text\nmain:\nla t0, buf\nsw t1, 0(t0)\nhalt\n"
            ".data\nbuf: .word 0\n"
        )
        assert report.by_check("store-to-text") == []


class TestDriver:
    def test_only_selects_checks(self):
        report = lint_asm(".text\nmain:\nnop\nhalt\n")
        full = set(report.checks_run)
        assert full == set(LINT_CHECKS)
        narrowed = run_lint(
            assemble(".text\nmain:\nnop\nhalt\n"),
            only=["store-to-text"],
        )
        assert narrowed.checks_run == ("store-to-text",)

    def test_ignore_removes_checks(self):
        report = run_lint(
            assemble(".text\nmain:\nnop\n"),
            ignore=["text-fallthrough"],
        )
        assert "text-fallthrough" not in report.checks_run
        assert report.by_check("text-fallthrough") == []

    def test_unknown_check_raises(self):
        with pytest.raises(KeyError, match="no-such-check"):
            run_lint(
                assemble(".text\nmain:\nhalt\n"), only=["no-such-check"]
            )

    def test_report_json_shape(self):
        report = lint_asm(".text\nmain:\nnop\n")
        payload = json.loads(report.to_json())
        assert payload["clean"] is False
        assert payload["errors"] == 1
        diag = payload["diagnostics"][0]
        assert set(diag) == {"check", "severity", "pc", "message", "function"}

    def test_clean_requires_no_warnings(self):
        report = lint_asm(".text\nmain:\naddi zero, zero, 1\nhalt\n")
        assert report.errors == 0
        assert report.warnings == 1
        assert not report.clean
