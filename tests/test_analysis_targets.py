"""Target-set verdicts and soundness certificates (repro.analysis.targets)."""

import dataclasses
import json

from conftest import ALL_IB_KINDS_SOURCE

from repro.analysis.classify import analyze_program
from repro.analysis.targets import (
    MAX_PRESEED,
    VERDICT_BOUNDED,
    VERDICT_EXACT,
    VERDICT_UNKNOWN,
    Certificate,
    analyze_targets,
    build_report,
    verify_report,
)
from repro.isa.assembler import assemble
from repro.lang import compile_to_program
from repro.workloads import get_workload, workload_names

TABLE_SOURCE = """
.text
main:
    li    t0, 1
    sltiu t9, t0, 3
    beq   t9, zero, default
    sll   t8, t0, 2
    la    t9, table
    add   t8, t8, t9
    lw    t8, 0(t8)
    jr    t8
case0:
    halt
case1:
    halt
case2:
    halt
default:
    halt

.data
table: .word case0, case1, case2
"""


def report_for(source: str):
    program = assemble(source)
    return program, build_report(program)


class TestVerdicts:
    def test_jump_table_is_exact_under_a2(self):
        program, report = report_for(TABLE_SOURCE)
        (v,) = [x for x in report.verdicts.values()
                if x.role == "jump-table"]
        assert v.verdict == VERDICT_EXACT
        assert not v.may_escape
        assert v.certificate.rule == "jump-table"
        assert v.certificate.assumptions == ("A2",)
        assert v.targets == frozenset(
            program.symbol(n) for n in ("case0", "case1", "case2")
        )

    def test_return_is_bounded_by_call_sites(self):
        program, report = report_for(
            ".text\nmain:\njal f\njal f\nhalt\nf:\njr ra\n"
        )
        v = report.verdicts[program.symbol("f")]
        assert v.verdict == VERDICT_BOUNDED
        assert v.certificate.rule == "return-sites"
        assert not v.may_escape  # f is never address-taken
        assert len(v.targets) == 2

    def test_address_taken_return_may_escape(self):
        program, report = report_for(
            ".text\nmain:\nla t0, f\njalr t0\nhalt\nf:\njr ra\n"
        )
        ret = report.verdicts[program.symbol("f")]
        assert ret.verdict == VERDICT_BOUNDED
        assert ret.may_escape
        assert "A1" in ret.certificate.assumptions

    def test_dataflow_resolved_icall_is_exact(self):
        program, report = report_for(
            ".text\nmain:\nla t0, f\njalr t0\nhalt\nf:\njr ra\n"
        )
        (icall,) = [x for x in report.verdicts.values()
                    if x.kind == "icall"]
        assert icall.verdict == VERDICT_EXACT
        assert icall.certificate.rule == "dataflow-consts"
        assert icall.targets == frozenset({program.symbol("f")})

    def test_unresolvable_jr_is_unknown(self):
        program, report = report_for(".text\nmain:\njr t0\n")
        (v,) = report.verdicts.values()
        assert v.verdict == VERDICT_UNKNOWN
        assert v.certificate.rule == "trivial-top"
        assert report.static_bound(v.pc) is None


class TestDevirtAndPreseed:
    def test_singleton_site_is_devirt_candidate(self):
        program, report = report_for(
            ".text\nmain:\nla t0, f\njalr t0\nhalt\nf:\njr ra\n"
        )
        candidates = report.devirt_candidates()
        (icall_pc,) = [pc for pc, v in report.verdicts.items()
                       if v.kind == "icall"]
        assert candidates[icall_pc] == program.symbol("f")

    def test_may_escape_site_is_not_devirtualized(self):
        program, report = report_for(
            ".text\nmain:\nla t0, f\njalr t0\nhalt\nf:\njr ra\n"
        )
        # f's return has one target but f is address-taken (may_escape)
        assert program.symbol("f") not in report.devirt_candidates()

    def test_preseed_map_skips_unknown_and_caps_hints(self):
        program, report = report_for(TABLE_SOURCE)
        preseed = report.preseed_map()
        for pc, hints in preseed.items():
            v = report.verdicts[pc]
            assert v.verdict != VERDICT_UNKNOWN
            assert len(hints) <= MAX_PRESEED
            assert set(hints) <= set(v.targets)


class TestCertificates:
    def test_all_workloads_verify_clean(self):
        for name in workload_names():
            program = get_workload(name, "tiny").compile()
            report = analyze_targets(program)
            assert verify_report(report) == [], name

    def test_compiled_all_kinds_verifies(self):
        program = compile_to_program(ALL_IB_KINDS_SOURCE)
        assert verify_report(build_report(program)) == []

    def test_tampered_targets_detected(self):
        program, report = report_for(TABLE_SOURCE)
        (pc,) = [pc for pc, v in report.verdicts.items()
                 if v.role == "jump-table"]
        v = report.verdicts[pc]
        bogus = dataclasses.replace(
            v, targets=v.targets | {program.entry}
        )
        report.verdicts[pc] = bogus
        assert any("drifted" in p for p in verify_report(report))

    def test_bogus_rule_detected(self):
        program, report = report_for(TABLE_SOURCE)
        pc = next(iter(report.verdicts))
        v = report.verdicts[pc]
        report.verdicts[pc] = dataclasses.replace(
            v, certificate=Certificate(rule="made-up", assumptions=())
        )
        assert any("unknown rule" in p for p in verify_report(report))

    def test_out_of_text_target_detected(self):
        program, report = report_for(TABLE_SOURCE)
        (pc,) = [pc for pc, v in report.verdicts.items()
                 if v.role == "jump-table"]
        v = report.verdicts[pc]
        report.verdicts[pc] = dataclasses.replace(
            v, targets=v.targets | {0xDEAD0000}
        )
        problems = verify_report(report)
        assert any("outside text" in p for p in problems)


class TestReportShape:
    def test_to_dict_is_deterministic(self):
        program = assemble(TABLE_SOURCE)
        a = json.dumps(build_report(program).to_dict(), sort_keys=True)
        b = json.dumps(build_report(program).to_dict(), sort_keys=True)
        assert a == b

    def test_analyze_targets_caches_by_image(self):
        program = get_workload("gzip_like", "tiny").compile()
        assert analyze_targets(program) is analyze_targets(program)

    def test_counts_cover_every_site(self):
        program = compile_to_program(ALL_IB_KINDS_SOURCE)
        report = build_report(program)
        analysis = analyze_program(program)
        assert set(report.verdicts) == set(analysis.sites)
        assert sum(report.verdict_counts().values()) == len(report.verdicts)
