"""Value-set dataflow fixed point (repro.analysis.dataflow).

The class names below mirror the soundness edge cases the analysis must
survive: loop-carried redefinitions must widen (never retain a stale
constant), loads must see every store the program can perform, and
degenerate jump tables (duplicate entries, self-referential entries)
must converge to sound sets.
"""

from repro.analysis.cfg import build_cfg
from repro.analysis.classify import analyze_program
from repro.analysis.dataflow import (
    BOT,
    ConstSet,
    K_CONST,
    MAX_ROUNDS,
    Strided,
    StoreModel,
    TOP,
    analyze_dataflow,
    concrete,
    const,
    join,
)
from repro.analysis.targets import build_report
from repro.isa.assembler import assemble
from repro.isa.registers import reg_number


def dataflow_for(source: str):
    program = assemble(source)
    analysis = analyze_program(program)
    extra = {t for s in analysis.sites.values() for t in s.targets}
    return program, analysis, analyze_dataflow(analysis.cfg, extra)


def site_value(program, analysis, dataflow, mnemonic: str):
    """Abstract value at the first IB site using ``mnemonic``."""
    instrs = dict(analysis.cfg.linear())
    for pc in sorted(analysis.sites):
        if instrs[pc].op.value == mnemonic:
            return dataflow.site_values[pc]
    raise AssertionError(f"no {mnemonic} site")


class TestDomain:
    def test_const_widens_past_budget(self):
        assert isinstance(const(*range(K_CONST)), ConstSet)
        assert const(*range(K_CONST + 1)) is TOP

    def test_join_absorbs_bot_and_top(self):
        v = const(4)
        assert join(BOT, v) == v
        assert join(v, BOT) == v
        assert join(TOP, v) is TOP

    def test_join_strided_absorbs_contained_consts(self):
        s = Strided(0, 4, 8)
        assert join(s, const(0, 4)) == s
        assert join(const(12), s) == s

    def test_join_disjoint_past_budget_is_top(self):
        a = const(*range(0, 2 * K_CONST, 2))
        b = const(*range(1, 2 * K_CONST, 2))
        assert join(a, b) is TOP

    def test_strided_concretises(self):
        assert concrete(Strided(0x100, 4, 3)) == frozenset(
            {0x100, 0x104, 0x108}
        )


class TestStoreModel:
    def test_unbounded_store_address_untracks(self):
        store = StoreModel()
        store.record(TOP, const(1))
        assert store.untracked

    def test_subword_granularity(self):
        store = StoreModel()
        store.record(const(0x1002), const(7))  # sub-word address
        assert store.stores_to(frozenset({0x1000}))


class TestLoopCarriedWidening:
    SOURCE = """
.text
main:
    li   t0, 0
    la   t1, main
loop:
    addi t0, t0, 1
    addi t1, t1, 0
    li   t2, 100
    bne  t0, t2, loop
    jr   t1
"""

    def test_loop_counter_widens_to_top(self):
        # t0 takes 100 distinct values: the join must widen past K_CONST
        # to TOP rather than retaining any stale partial constant set
        program, analysis, dataflow = dataflow_for(self.SOURCE)
        jr_pc = next(iter(analysis.sites))
        block_start = analysis.cfg.block_start_of[jr_pc]
        in_state = dataflow.block_in[block_start]
        assert in_state.get(reg_number("t0"), TOP) is TOP

    def test_loop_invariant_value_survives(self):
        # t1 is redefined each iteration to the same value (+0): the
        # fixed point must still know it exactly at the jr
        program, analysis, dataflow = dataflow_for(self.SOURCE)
        value = site_value(program, analysis, dataflow, "jr")
        assert concrete(value) == frozenset({program.symbol("main")})


class TestOverwrittenMemoryWord:
    SOURCE = """
.text
main:
    la   t0, slot
    lw   t1, 0(t0)
    la   t2, g
    sw   t2, 0(t0)
    jalr t1
    halt
f:
    jr ra
g:
    jr ra

.data
slot: .word f
"""

    def test_icall_value_includes_image_and_stored_word(self):
        # the word is overwritten between the load and the call; the
        # (flow-insensitive) store model must make the load see *both*
        # the image value f and the stored value g
        program, analysis, dataflow = dataflow_for(self.SOURCE)
        value = site_value(program, analysis, dataflow, "jalr")
        values = concrete(value)
        assert values is not None
        assert program.symbol("f") in values
        assert program.symbol("g") in values

    def test_verdict_remains_sound_superset(self):
        program, analysis, dataflow = dataflow_for(self.SOURCE)
        report = build_report(program, analysis=analysis,
                              dataflow=dataflow)
        jalr_pc = next(
            pc for pc, s in analysis.sites.items() if s.kind == "icall"
        )
        bound = report.static_bound(jalr_pc)
        assert bound is not None
        assert {program.symbol("f"), program.symbol("g")} <= set(bound)


class TestDegenerateTables:
    DUPLICATE = """
.text
main:
    li    t0, 1
    sltiu t9, t0, 3
    beq   t9, zero, default
    sll   t8, t0, 2
    la    t9, table
    add   t8, t8, t9
    lw    t8, 0(t8)
    jr    t8
case0:
    halt
case1:
    halt
default:
    halt

.data
table: .word case0, case1, case0
"""

    def test_duplicate_entries_deduplicate(self):
        # three slots, two distinct targets: the verdict set is the
        # *deduplicated* target set, still exact
        program, analysis, _ = dataflow_for(self.DUPLICATE)
        report = build_report(program, analysis=analysis)
        (pc,) = [
            p for p, s in analysis.sites.items() if s.role == "jump-table"
        ]
        v = report.verdicts[pc]
        assert v.verdict == "exact"
        assert v.targets == frozenset(
            {program.symbol("case0"), program.symbol("case1")}
        )

    SELF_REFERENTIAL = """
.text
main:
    li    t0, 0
    sltiu t9, t0, 2
    beq   t9, zero, done
    sll   t8, t0, 2
    la    t9, table
    add   t8, t8, t9
    lw    t8, 0(t8)
jrsite:
    jr    t8
done:
    halt

.data
table: .word jrsite, done
"""

    def test_self_referential_entry_converges_conservatively(self):
        # one table slot points back at the jr itself, which makes the
        # jr its *own* indirect entry point: the def-window floor must
        # refuse table recovery (control can enter at the jr with an
        # arbitrary register state), the fixed point must still converge,
        # and the verdict falls back to a sound unknown
        program, analysis, dataflow = dataflow_for(self.SELF_REFERENTIAL)
        assert dataflow.rounds < MAX_ROUNDS  # converged, not pinned
        jr_pc = program.symbol("jrsite")
        assert analysis.sites[jr_pc].role == "computed-jump"
        assert jr_pc in analysis.address_taken  # its own table target
        report = build_report(program, analysis=analysis,
                              dataflow=dataflow)
        v = report.verdicts[jr_pc]
        assert v.verdict == "unknown"
        assert v.certificate.rule == "trivial-top"


class TestGuardRefinement:
    def test_sltiu_guard_refines_fallthrough_index(self):
        program, analysis, dataflow = dataflow_for(
            TestDegenerateTables.DUPLICATE
        )
        # the refined strided index makes the table load a bounded
        # gather: the jr value must concretise (not TOP)
        value = site_value(program, analysis, dataflow, "jr")
        assert concrete(value) is not None


class TestSeeding:
    def test_post_call_block_is_all_top_seed(self):
        source = """
.text
main:
    li  t0, 7
    jal f
    jr  t0
f:
    jr  ra
"""
        program, analysis, dataflow = dataflow_for(source)
        # t0 survives the call *dynamically*, but the analysis must not
        # assume it: the post-call block is seeded all-TOP
        value = site_value(program, analysis, dataflow, "jr")
        assert value is TOP
