"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "gzip_like"])
        assert args.workload == "gzip_like"
        assert args.ib == "ibtc"
        assert args.scale == "small"

    def test_rejects_unknown_mechanism(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "x", "--ib", "oracle"])

    def test_engine_flag(self):
        for command in (["run", "x"], ["experiments"]):
            args = build_parser().parse_args(command)
            assert args.engine is None  # resolved via REPRO_ENGINE later
            for engine in ("oracle", "threaded"):
                args = build_parser().parse_args(
                    command + ["--engine", engine]
                )
                assert args.engine == engine

    def test_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "x", "--engine", "jit"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "--engine", "jit"])

    def test_engine_in_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--help"])
        assert "--engine" in capsys.readouterr().out


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gzip_like" in out
        assert "x86_p4" in out

    def test_run(self, capsys):
        code = main(
            ["run", "eon_like", "--scale", "tiny", "--ib", "sieve",
             "--returns", "fast"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "overhead" in out
        assert "sieve(512)" in out

    def test_run_with_oracle_engine_matches_threaded(self, capsys):
        import json

        payloads = {}
        for engine in ("oracle", "threaded"):
            assert main(
                ["run", "mcf_like", "--scale", "tiny", "--json",
                 "--engine", engine]
            ) == 0
            payloads[engine] = json.loads(capsys.readouterr().out)
        assert payloads["oracle"] == payloads["threaded"]

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "e99"]) == 2

    def test_experiment_e1(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)  # results/ lands in tmp
        assert main(["experiment", "e1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "indirect-branch characteristics" in out
        assert (tmp_path / "results" / "e1_ib_characteristics.csv").exists()

    def test_experiments_unknown_subset(self, capsys):
        assert main(["experiments", "--only", "e1,e99"]) == 2
        assert "e99" in capsys.readouterr().err

    def test_experiments_executor(self, capsys, monkeypatch, tmp_path):
        from repro.eval.runner import clear_caches

        monkeypatch.chdir(tmp_path)  # results/ and results/.cache land in tmp
        assert main(["experiments", "--only", "e1", "--scale", "tiny",
                     "--jobs", "1"]) == 0
        captured = capsys.readouterr()
        assert "indirect-branch characteristics" in captured.out
        assert "unique after dedup" in captured.out
        assert "[ 12/12]" in captured.err  # per-cell progress
        assert (tmp_path / "results" / "e1_ib_characteristics.csv").exists()
        assert list((tmp_path / "results" / ".cache").glob("*/*.json"))
        # second invocation is served from the disk cache
        clear_caches()
        assert main(["experiments", "--only", "e1", "--scale", "tiny",
                     "--quiet"]) == 0
        captured = capsys.readouterr()
        assert "12 from cache, 0 simulated (100% cache hits)" in captured.out
        assert captured.err == ""  # --quiet

    def test_compile(self, tmp_path, capsys):
        source = tmp_path / "p.mc"
        source.write_text("int main() { print_int(1); return 0; }")
        assert main(["compile", str(source)]) == 0
        out = capsys.readouterr().out
        assert ".text" in out
        assert "main:" in out

    def test_compile_to_file(self, tmp_path):
        source = tmp_path / "p.mc"
        source.write_text("int main() { return 0; }")
        output = tmp_path / "p.s"
        assert main(["compile", str(source), "-o", str(output)]) == 0
        assert "main:" in output.read_text()

    def test_asm_run_roundtrip(self, tmp_path, capsys):
        source = tmp_path / "p.mc"
        source.write_text('int main() { print_str("hi"); return 3; }')
        assembly = tmp_path / "p.s"
        main(["compile", str(source), "-o", str(assembly)])
        code = main(["asm", str(assembly), "--run"])
        assert code == 3
        assert "hi" in capsys.readouterr().out


class TestCompileOptimize:
    def test_optimize_flag_shrinks_output(self, tmp_path):
        source = tmp_path / "p.mc"
        source.write_text(
            "int main() { print_int((1 + 2) * (3 + 4)); return 0; }"
        )
        from repro.cli import main as cli_main

        plain = tmp_path / "plain.s"
        optimized = tmp_path / "opt.s"
        assert cli_main(["compile", str(source), "-o", str(plain)]) == 0
        assert cli_main(
            ["compile", str(source), "-O", "-o", str(optimized)]
        ) == 0
        assert len(optimized.read_text()) < len(plain.read_text())


class TestJsonOutput:
    def test_run_json(self, capsys):
        import json

        assert main(["run", "mcf_like", "--scale", "tiny", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "mcf_like"
        assert payload["overhead"] > 1.0
        assert payload["sdt_cycles"] > payload["native_cycles"]
        assert "app" in payload["breakdown"]


class TestAnalyze:
    def test_analyze_workload_text(self, capsys):
        assert main(["analyze", "eon_like"]) == 0
        out = capsys.readouterr().out
        assert "IB sites" in out
        assert "indirect-call" in out

    def test_analyze_json_shape(self, capsys):
        import json

        assert main(["analyze", "mcf_like", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"summary", "functions", "sites"}
        assert payload["summary"]["ib_sites"] == len(payload["sites"])
        for site in payload["sites"]:
            assert site["role"] in {
                "return", "indirect-call", "jump-table", "computed-jump"
            }

    def test_analyze_minic_file(self, tmp_path, capsys):
        source = tmp_path / "p.mc"
        source.write_text("int main() { print_int(1); return 0; }")
        assert main(["analyze", str(source)]) == 0
        assert "return" in capsys.readouterr().out


class TestLint:
    def test_lint_clean_workload_exits_zero(self, capsys):
        assert main(["lint", "gzip_like"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_lint_dirty_asm_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text(".text\nmain:\nnop\n")   # falls off end of .text
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "text-fallthrough" in out

    def test_lint_check_selection(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text(".text\nmain:\nnop\n")
        # the selected check does not fire on this program
        assert main(
            ["lint", str(bad), "--check", "store-to-text"]
        ) == 0

    def test_lint_json_shape(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.s"
        bad.write_text(".text\nmain:\nnop\n")
        assert main(["lint", str(bad), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["errors"] >= 1
        assert payload["diagnostics"][0]["check"] == "text-fallthrough"


class TestCrossval:
    def test_crossval_workload(self, capsys):
        assert main(["crossval", "eon_like", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "SOUND" in out

    def test_crossval_json(self, capsys):
        import json

        assert main(
            ["crossval", "mcf_like", "--scale", "tiny", "--json"]
        ) == 0
        (payload,) = json.loads(capsys.readouterr().out)
        assert payload["all_sound"] is True
        assert payload["workload"] == "mcf_like"
