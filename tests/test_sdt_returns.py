"""Return-handling mechanisms: fast returns, shadow stack, return cache."""

import pytest

from conftest import assert_equivalent, run_minic, run_minic_sdt
from repro.host.costs import Category
from repro.host.profile import SIMPLE
from repro.sdt.config import SDTConfig
from repro.sdt.ib.returns import ReturnCache, ShadowReturnStack


CALL_HEAVY = """
int leaf(int x) { return x + 1; }
int middle(int x) { return leaf(x) + leaf(x + 1); }
int main() {
    int total = 0;
    int i;
    for (i = 0; i < 120; i++) total += middle(i);
    print_int(total);
    return 0;
}
"""

RECURSIVE = """
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { print_int(fib(14)); return 0; }
"""


def run_returns(source: str, scheme: str, **kwargs):
    config = SDTConfig(profile=SIMPLE, ib="ibtc", returns=scheme, **kwargs)
    return run_minic_sdt(source, config)


class TestFastReturns:
    def test_equivalence(self):
        for source in (CALL_HEAVY, RECURSIVE):
            assert_equivalent(source, SDTConfig(profile=SIMPLE, returns="fast"))

    def test_hit_rate_near_perfect(self):
        result = run_returns(CALL_HEAVY, "fast")
        assert result.stats.hit_rate("fast-return") > 0.95

    def test_no_ibtc_traffic_for_returns(self):
        """Under fast returns the IBTC only serves ijumps/icalls."""
        result = run_returns(CALL_HEAVY, "fast")
        ibtc_traffic = sum(
            count for key, count in result.stats.mechanism.items()
            if key.startswith("ibtc")
        )
        # CALL_HEAVY has no icalls or ijumps at all
        assert ibtc_traffic == 0

    def test_fixup_charged_per_call(self):
        from repro.isa.opcodes import InstrClass

        result = run_returns(CALL_HEAVY, "fast")
        calls = result.iclass_counts[InstrClass.CALL] + \
            result.iclass_counts[InstrClass.ICALL]
        assert result.cycles[Category.FAST_RETURN.value] == \
            calls * SIMPLE.fast_return_fixup

    def test_cheaper_than_returns_as_ib(self):
        generic = run_returns(RECURSIVE, "same")
        fast = run_returns(RECURSIVE, "fast")
        assert fast.total_cycles < generic.total_cycles

    def test_transparency_violation_is_contained(self):
        """Guest code that stores and reloads its return address still
        works (the pad round-trips through memory)."""
        source = """
        int save;
        int f(int x) { return x * 2; }
        int main() {
            int total = 0;
            int i;
            for (i = 0; i < 50; i++) total += f(i);
            print_int(total);
            return 0;
        }
        """
        assert_equivalent(source, SDTConfig(profile=SIMPLE, returns="fast"))

    def test_survives_cache_flush(self):
        config = SDTConfig(profile=SIMPLE, returns="fast",
                           fragment_cache_bytes=400)
        result = assert_equivalent(CALL_HEAVY, config)
        assert result.stats.cache_flushes > 0


class TestShadowStack:
    def test_equivalence(self):
        for source in (CALL_HEAVY, RECURSIVE):
            assert_equivalent(
                source, SDTConfig(profile=SIMPLE, returns="shadow")
            )

    def test_hit_rate_on_balanced_code(self):
        result = run_returns(CALL_HEAVY, "shadow")
        assert result.stats.hit_rate("shadow-stack") > 0.9

    def test_depth_limit_degrades_deep_recursion(self):
        deep = run_returns(RECURSIVE, "shadow", shadow_depth=4)
        unbounded = run_returns(RECURSIVE, "shadow", shadow_depth=0)
        assert deep.stats.hit_rate("shadow-stack") < \
            unbounded.stats.hit_rate("shadow-stack")
        assert deep.output == unbounded.output

    def test_push_pop_cycles_charged(self):
        result = run_returns(CALL_HEAVY, "shadow")
        assert result.cycles[Category.SHADOW_STACK.value] > 0

    def test_rejects_negative_depth(self):
        with pytest.raises(ValueError):
            ShadowReturnStack(fallback=None, depth=-1)

    def test_mismatch_falls_back(self):
        """A return that does not match the shadow top (depth-trimmed)
        must still resolve through the fallback mechanism."""
        result = run_returns(RECURSIVE, "shadow", shadow_depth=2)
        assert result.stats.mechanism["shadow-stack.miss"] > 0
        assert result.output == run_minic(RECURSIVE).output


class TestReturnCache:
    def test_equivalence(self):
        for source in (CALL_HEAVY, RECURSIVE):
            assert_equivalent(
                source, SDTConfig(profile=SIMPLE, returns="retcache")
            )

    def test_monomorphic_returns_hit(self):
        result = run_returns(CALL_HEAVY, "retcache", retcache_entries=64)
        assert result.stats.hit_rate("return-cache-64") > 0.8

    def test_tiny_cache_conflicts(self):
        big = run_returns(RECURSIVE, "retcache", retcache_entries=256)
        tiny = run_returns(RECURSIVE, "retcache", retcache_entries=1)
        assert tiny.stats.hit_rate("return-cache-1") < \
            big.stats.hit_rate("return-cache-256")

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            ReturnCache(entries=3)

    def test_probe_cycles_charged(self):
        result = run_returns(CALL_HEAVY, "retcache")
        assert result.cycles[Category.RETCACHE.value] > 0


class TestReturnsAsIB:
    def test_rets_flow_through_generic_mechanism(self):
        result = run_returns(CALL_HEAVY, "same")
        name = "ibtc-shared-4096"
        total = (
            result.stats.mechanism[f"{name}.hit"]
            + result.stats.mechanism[f"{name}.miss"]
        )
        assert total == result.stats.ib_dispatches["ret"]  # no icalls here
