"""Static-vs-dynamic cross-validation (repro.eval.static_dynamic)."""

from conftest import ALL_IB_KINDS_SOURCE

from repro.analysis.classify import analyze_program
from repro.eval.fanout import FanoutProfile, SiteProfile, collect_fanout
from repro.eval.static_dynamic import cross_validate, join_static_dynamic
from repro.isa.assembler import assemble
from repro.lang import compile_to_program
from repro.machine.interpreter import Interpreter


def profile_program(program, fuel=5_000_000):
    from repro.eval.fanout import _FanoutObserver

    observer = _FanoutObserver()
    Interpreter(program, observer=observer).run(fuel)
    return FanoutProfile(sites=observer.sites)


class TestJoin:
    def test_all_ib_kinds_is_sound(self):
        program = compile_to_program(ALL_IB_KINDS_SOURCE)
        report = join_static_dynamic(
            analyze_program(program), profile_program(program)
        )
        assert report.all_sound, report.format()
        assert report.sites
        assert report.unknown_dynamic == ()
        for site in report.sites:
            assert site.dynamic_fanout <= site.static_bound
            assert site.slack >= 0

    def test_violation_detected(self):
        # a fabricated dynamic site with targets the static set cannot
        # contain must be flagged as unsound
        program = assemble(
            ".text\nmain:\njal f\nhalt\nf:\njr ra\n"
        )
        analysis = analyze_program(program)
        ret_pc = program.symbol("f")
        fake = FanoutProfile(
            sites={
                ret_pc: SiteProfile(
                    pc=ret_pc,
                    kind="ijump",
                    targets={0xDEAD0000, 0xDEAD0004},
                    dispatches=2,
                )
            }
        )
        report = join_static_dynamic(analysis, fake)
        assert not report.all_sound
        (violation,) = report.violations
        assert violation.pc == ret_pc
        assert violation.missing_targets == (0xDEAD0000, 0xDEAD0004)

    def test_unknown_dynamic_site_is_unsound(self):
        program = assemble(".text\nmain:\nhalt\n")
        analysis = analyze_program(program)
        fake = FanoutProfile(
            sites={
                0x00400100: SiteProfile(
                    pc=0x00400100, kind="ret", targets={4}, dispatches=1
                )
            }
        )
        report = join_static_dynamic(analysis, fake)
        assert not report.all_sound
        assert report.unknown_dynamic == (0x00400100,)

    def test_unexercised_sites_counted(self):
        program = assemble(
            ".text\nmain:\nhalt\nunused:\njr ra\n"
        )
        analysis = analyze_program(program)
        report = join_static_dynamic(analysis, FanoutProfile(sites={}))
        assert report.unexercised == 1
        assert report.all_sound   # nothing exercised, nothing violated


class TestWorkloads:
    def test_workload_cross_validation_sound(self):
        report = cross_validate("eon_like", scale="tiny")
        assert report.all_sound, report.format()
        assert report.sites
        payload = report.to_dict()
        assert payload["all_sound"] is True
        assert payload["violations"] == []
        assert payload["sites"] == len(report.sites)

    def test_dispatch_counts_match_dynamic_profile(self):
        workload_name, scale = "mcf_like", "tiny"
        report = cross_validate(workload_name, scale=scale)
        profile = collect_fanout(workload_name, scale=scale)
        assert report.all_sound, report.format()
        by_pc = {site.pc: site for site in report.sites}
        for pc, dyn in profile.sites.items():
            assert by_pc[pc].dispatches == dyn.dispatches
            assert by_pc[pc].dynamic_fanout == dyn.fanout
