"""Circuit breaker state machine under a fake clock — no real sleeps."""

import pytest

from repro.eval.backoff import BackoffPolicy
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


#: Jitter-free schedule (1s, 2s, 4s ... cap 60s) for exact assertions.
PLAIN = BackoffPolicy(base=1.0, factor=2.0, ceiling=60.0, jitter=0.0)


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(threshold=3, policy=PLAIN, clock=clock)


def trip(breaker, family="fam", times=3):
    for _ in range(times):
        breaker.record_failure(family)


class TestTrip:
    def test_starts_closed_and_admits(self, breaker):
        assert breaker.state_of("fam") == CLOSED
        assert breaker.admit("fam") == (True, 0.0)

    def test_opens_at_threshold(self, breaker):
        trip(breaker, times=2)
        assert breaker.state_of("fam") == CLOSED
        breaker.record_failure("fam")
        assert breaker.state_of("fam") == OPEN

    def test_success_resets_the_failure_streak(self, breaker):
        trip(breaker, times=2)
        breaker.record_success("fam")
        trip(breaker, times=2)
        assert breaker.state_of("fam") == CLOSED

    def test_families_are_independent(self, breaker):
        trip(breaker, family="bad")
        assert breaker.state_of("bad") == OPEN
        assert breaker.admit("good") == (True, 0.0)

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


class TestOpenState:
    def test_rejects_with_retry_hint(self, breaker, clock):
        trip(breaker)
        allowed, retry_after = breaker.admit("fam")
        assert not allowed
        assert retry_after == pytest.approx(1.0)  # first open interval
        clock.advance(0.4)
        _, retry_after = breaker.admit("fam")
        assert retry_after == pytest.approx(0.6)

    def test_straggler_failure_while_open_is_noop(self, breaker):
        trip(breaker)
        state = breaker.snapshot()["families"]["fam"]
        breaker.record_failure("fam")
        assert breaker.snapshot()["families"]["fam"] == state


class TestHalfOpen:
    def test_probe_admitted_after_backoff(self, breaker, clock):
        trip(breaker)
        clock.advance(1.0)
        assert breaker.admit("fam") == (True, 0.0)
        assert breaker.state_of("fam") == HALF_OPEN

    def test_single_probe_at_a_time(self, breaker, clock):
        trip(breaker)
        clock.advance(1.0)
        assert breaker.admit("fam")[0]
        assert breaker.admit("fam") == (False, 0.0)

    def test_probe_success_closes(self, breaker, clock):
        trip(breaker)
        clock.advance(1.0)
        breaker.admit("fam")
        breaker.record_success("fam")
        assert breaker.state_of("fam") == CLOSED
        assert breaker.admit("fam") == (True, 0.0)

    def test_probe_failure_reopens_with_longer_backoff(self, breaker,
                                                       clock):
        trip(breaker)
        clock.advance(1.0)
        breaker.admit("fam")
        breaker.record_failure("fam")
        assert breaker.state_of("fam") == OPEN
        _, retry_after = breaker.admit("fam")
        assert retry_after == pytest.approx(2.0)  # second open interval

    def test_backoff_caps_at_ceiling(self, breaker, clock):
        trip(breaker)
        for _ in range(10):                      # 10 failed probes
            clock.advance(120.0)
            breaker.admit("fam")
            breaker.record_failure("fam")
        clock.advance(0.0)
        _, retry_after = breaker.admit("fam")
        assert retry_after <= 60.0

    def test_recovery_resets_backoff_schedule(self, breaker, clock):
        trip(breaker)
        clock.advance(1.0)
        breaker.admit("fam")
        breaker.record_success("fam")
        trip(breaker)                            # trips afresh
        _, retry_after = breaker.admit("fam")
        assert retry_after == pytest.approx(1.0)  # back to first interval


class TestJitterDeterminism:
    def test_families_decorrelate_but_reproduce(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, ceiling=60.0,
                               jitter=0.5, seed=0)
        clock = FakeClock()
        first = CircuitBreaker(threshold=1, policy=policy, clock=clock)
        second = CircuitBreaker(threshold=1, policy=policy, clock=clock)
        for breaker in (first, second):
            breaker.record_failure("fam-a")
            breaker.record_failure("fam-b")
        a1 = first.admit("fam-a")[1]
        b1 = first.admit("fam-b")[1]
        assert a1 != b1                           # decorrelated
        assert second.admit("fam-a")[1] == a1     # reproducible
        assert second.admit("fam-b")[1] == b1


class TestObservability:
    def test_transition_callback_and_counter(self, clock):
        seen = []
        breaker = CircuitBreaker(threshold=1, policy=PLAIN, clock=clock,
                                 on_transition=lambda *a: seen.append(a))
        breaker.record_failure("fam")
        clock.advance(1.0)
        breaker.admit("fam")
        breaker.record_success("fam")
        assert seen == [("fam", CLOSED, OPEN),
                        ("fam", OPEN, HALF_OPEN),
                        ("fam", HALF_OPEN, CLOSED)]
        assert breaker.transitions == 3

    def test_snapshot_is_deterministic_and_sorted(self, breaker):
        trip(breaker, family="zzz")
        trip(breaker, family="aaa")
        snapshot = breaker.snapshot()
        assert snapshot["open"] == ["aaa", "zzz"]
        assert list(snapshot["families"]) == ["aaa", "zzz"]
        assert snapshot["families"]["aaa"]["opened_total"] == 1
