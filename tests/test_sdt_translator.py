"""Fragment builder: basic-block discovery and translation charging."""

import pytest

from repro.host.costs import Category, HostModel
from repro.host.profile import SIMPLE
from repro.isa.assembler import assemble
from repro.isa.opcodes import Op
from repro.machine.errors import MemoryFault
from repro.sdt.cache import FragmentCache
from repro.sdt.fragment import ExitKind
from repro.sdt.translator import Translator


def make_translator(source: str, max_fragment_instrs: int = 128):
    program = assemble(source)
    cache = FragmentCache()
    model = HostModel(SIMPLE)
    return Translator(program, cache, model,
                      max_fragment_instrs=max_fragment_instrs), program, model


class TestBlockDiscovery:
    def test_block_ends_at_branch(self):
        translator, program, _ = make_translator(
            ".text\nmain:\nnop\nnop\nbeq t0, t1, main\nnop\n"
        )
        frag = translator.translate(program.entry)
        assert len(frag.instrs) == 3
        assert frag.exit_kind is ExitKind.COND
        assert frag.instrs[-1][1].op is Op.BEQ

    def test_block_ends_at_each_control_kind(self):
        cases = {
            "j main": ExitKind.JUMP,
            "jal main": ExitKind.CALL,
            "jr t0": ExitKind.IJUMP,
            "jalr t0": ExitKind.ICALL,
            "ret": ExitKind.RET,
            "halt": ExitKind.HALT,
        }
        for terminator, expected in cases.items():
            translator, program, _ = make_translator(
                f".text\nmain:\nnop\n{terminator}\n"
            )
            frag = translator.translate(program.entry)
            assert frag.exit_kind is expected, terminator

    def test_syscall_does_not_end_block(self):
        translator, program, _ = make_translator(
            ".text\nmain:\nsyscall\nnop\nret\n"
        )
        frag = translator.translate(program.entry)
        assert len(frag.instrs) == 3

    def test_length_limit_fall_exit(self):
        translator, program, _ = make_translator(
            ".text\nmain:\n" + "nop\n" * 10 + "ret\n", max_fragment_instrs=4
        )
        frag = translator.translate(program.entry)
        assert len(frag.instrs) == 4
        assert frag.exit_kind is ExitKind.FALL

    def test_overlapping_fragments_allowed(self):
        translator, program, _ = make_translator(
            ".text\nmain:\nnop\nmid:\nnop\nret\n"
        )
        whole = translator.translate(program.entry)
        partial = translator.translate(program.entry + 4)
        assert len(whole.instrs) == 3
        assert len(partial.instrs) == 2
        assert whole.fc_addr != partial.fc_addr

    def test_guest_pcs_recorded(self):
        translator, program, _ = make_translator(".text\nmain:\nnop\nret\n")
        frag = translator.translate(program.entry)
        assert [pc for pc, _ in frag.instrs] == [program.entry,
                                                 program.entry + 4]


class TestCachingAndCosts:
    def test_get_or_translate_caches(self):
        translator, program, _ = make_translator(".text\nmain:\nret\n")
        first = translator.get_or_translate(program.entry)
        second = translator.get_or_translate(program.entry)
        assert first is second
        assert translator.cache.stats.fragments_translated == 1

    def test_translation_charged(self):
        translator, program, model = make_translator(
            ".text\nmain:\nnop\nnop\nret\n"
        )
        translator.translate(program.entry)
        expected = SIMPLE.translate_fragment + 3 * SIMPLE.translate_per_instr
        assert model.cycles[Category.TRANSLATE] == expected

    def test_stats_track_instr_count(self):
        translator, program, _ = make_translator(
            ".text\nmain:\nnop\nnop\nnop\nret\n"
        )
        translator.translate(program.entry)
        assert translator.cache.stats.instrs_translated == 4

    def test_fetch_outside_text_faults(self):
        translator, _, _ = make_translator(".text\nmain:\nret\n")
        with pytest.raises(MemoryFault):
            translator.translate(0x10)

    def test_misaligned_pc_faults(self):
        translator, program, _ = make_translator(".text\nmain:\nret\n")
        with pytest.raises(MemoryFault):
            translator.translate(program.entry + 2)

    def test_rejects_zero_fragment_limit(self):
        with pytest.raises(ValueError):
            make_translator(".text\nmain:\nret\n", max_fragment_instrs=0)
