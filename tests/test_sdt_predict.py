"""Inline target prediction (one-entry inline cache) and microbenchmarks."""

import pytest

from conftest import ALL_IB_KINDS_SOURCE, assert_equivalent, run_minic_sdt
from repro.host.costs import Category
from repro.host.profile import SIMPLE
from repro.machine.interpreter import Interpreter
from repro.sdt.config import SDTConfig
from repro.sdt.ib.predict import InlinePrediction
from repro.sdt.ib.reentry import TranslatorReentry
from repro.workloads.microbench import dispatch_microbench

from test_sdt_ibtc import dispatch_source


def run_predict(source: str, **kwargs):
    config = SDTConfig(profile=SIMPLE, ib="ibtc", inline_predict=True,
                       **kwargs)
    return run_minic_sdt(source, config)


class TestEquivalence:
    @pytest.mark.parametrize("ib", ["reentry", "ibtc", "sieve"])
    def test_all_inner_mechanisms(self, ib):
        config = SDTConfig(profile=SIMPLE, ib=ib, inline_predict=True)
        assert_equivalent(ALL_IB_KINDS_SOURCE, config)

    def test_with_fast_returns(self):
        config = SDTConfig(profile=SIMPLE, inline_predict=True,
                           returns="fast")
        assert_equivalent(ALL_IB_KINDS_SOURCE, config)

    def test_with_tiny_fragment_cache(self):
        config = SDTConfig(profile=SIMPLE, inline_predict=True,
                           fragment_cache_bytes=512)
        result = assert_equivalent(ALL_IB_KINDS_SOURCE, config)
        assert result.stats.cache_flushes > 0


class TestDynamics:
    def test_monomorphic_site_hits_inline(self):
        result = run_predict(dispatch_source(1, iterations=150))
        name = "predict+ibtc-shared-4096"
        hits = result.stats.mechanism[f"{name}.hit"]
        misses = result.stats.mechanism[f"{name}.miss"]
        assert hits / (hits + misses) > 0.95
        # the inner IBTC only sees the misses
        inner_traffic = (
            result.stats.mechanism["ibtc-shared-4096.hit"]
            + result.stats.mechanism["ibtc-shared-4096.miss"]
        )
        assert inner_traffic == misses

    def test_alternating_site_always_misses_inline(self):
        result = run_predict(dispatch_source(2, iterations=100))
        name = "predict+ibtc-shared-4096"
        # the icall site alternates every iteration: its predictions
        # never hit; only the monomorphic return sites do
        assert result.stats.mechanism[f"{name}.miss"] >= 100

    def test_prediction_cost_charged(self):
        result = run_predict(dispatch_source(1, iterations=50))
        assert result.cycles[Category.IBTC.value] > 0

    def test_label(self):
        config = SDTConfig(ib="sieve", inline_predict=True)
        assert config.label == "sieve(512)+predict"

    def test_wrapper_name(self):
        wrapper = InlinePrediction(TranslatorReentry())
        assert wrapper.name == "predict+reentry"

    def test_first_target_policy(self):
        """repatch=False freezes the first observed target."""
        from repro.lang import compile_to_program
        from repro.sdt.vm import SDTVM

        program = compile_to_program(dispatch_source(2, iterations=60))
        vm = SDTVM(program, SDTConfig(profile=SIMPLE))
        frozen = InlinePrediction(TranslatorReentry(), repatch=False)
        vm.generic_ib = frozen
        vm.return_mech.generic = frozen
        frozen.bind(vm)
        result = vm.run()
        # with an alternating site and a frozen prediction, about half of
        # the icalls hit (the frozen target) and half miss
        hits = vm.stats.mechanism["predict+reentry.hit"]
        assert hits > 0
        assert result.exit_code == 0


class TestMicrobench:
    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            dispatch_microbench(0)

    def test_uniform_fanout_observable(self):
        from repro.eval.fanout import collect_fanout

        workload = dispatch_microbench(4, iterations=64)
        profile = collect_fanout(workload, scale="tiny")
        icall_sites = [
            s for s in profile.sites.values() if s.kind == "icall"
        ]
        assert len(icall_sites) == 1
        assert icall_sites[0].fanout == 4

    def test_skewed_distribution(self):
        from repro.eval.fanout import collect_fanout

        workload = dispatch_microbench(4, iterations=256, skewed=True)
        profile = collect_fanout(workload, scale="tiny")
        site = next(
            s for s in profile.sites.values() if s.kind == "icall"
        )
        assert site.fanout == 4
        assert site.dispatches == 256

    def test_deterministic_output(self):
        workload = dispatch_microbench(3, iterations=40)
        first = Interpreter(workload.compile()).run()
        second = Interpreter(workload.compile()).run()
        assert first.output == second.output
