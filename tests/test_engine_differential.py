"""Oracle vs threaded engine: observable-result byte identity.

The threaded engine (repro.machine.engine) must be a pure performance
change: for every workload, profile and execution mode the observable
results — output, exit code, retired count, per-class instruction
counts, total cycles and the full cycle breakdown — must match the
oracle engine exactly.  These tests enforce that, plus the fuel-parity
contract (both the interpreter and the SDT stop at *exactly* the fuel
limit) and engine-neutral disk caching.
"""

from __future__ import annotations

import random

import pytest

from repro.host.costs import HostModel, NativeCostObserver
from repro.host.profile import SIMPLE, X86_P4
from repro.isa.assembler import assemble
from repro.isa.program import DATA_BASE
from repro.lang import compile_to_program
from repro.machine.engine import ENGINES
from repro.machine.errors import FuelExhausted
from repro.machine.interpreter import Interpreter
from repro.sdt.config import SDTConfig
from repro.sdt.vm import SDTVM
from repro.workloads import get_workload, workload_names

PROFILES = (SIMPLE, X86_P4)


def _native(program, profile, engine):
    model = HostModel(profile)
    result = Interpreter(
        program, observer=NativeCostObserver(model), engine=engine
    ).run()
    return {
        "output": result.output,
        "exit_code": result.exit_code,
        "retired": result.retired,
        "iclass_counts": dict(result.iclass_counts),
        "total_cycles": model.total_cycles,
        "cycles": dict(model.cycles),
    }


def _sdt(program, profile, engine, **config_kwargs):
    config = SDTConfig(profile=profile, engine=engine, **config_kwargs)
    result = SDTVM(program, config=config).run()
    return {
        "output": result.output,
        "exit_code": result.exit_code,
        "retired": result.retired,
        "iclass_counts": dict(result.iclass_counts),
        "total_cycles": result.total_cycles,
        "cycles": dict(result.cycles),
    }


def _assert_same(oracle: dict, threaded: dict, context: str) -> None:
    for key in oracle:
        assert oracle[key] == threaded[key], (
            f"{context}: engines diverge on {key}: "
            f"oracle={oracle[key]!r} threaded={threaded[key]!r}"
        )


class TestWorkloadDifferential:
    """Every registered workload, both modes, two architecture profiles."""

    @pytest.mark.parametrize("name", workload_names())
    @pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
    def test_native_identical(self, name, profile):
        program = get_workload(name, "tiny").compile()
        _assert_same(
            _native(program, profile, "oracle"),
            _native(program, profile, "threaded"),
            f"native/{name}@{profile.name}",
        )

    @pytest.mark.parametrize("name", workload_names())
    @pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
    def test_sdt_identical(self, name, profile):
        program = get_workload(name, "tiny").compile()
        _assert_same(
            _sdt(program, profile, "oracle"),
            _sdt(program, profile, "threaded"),
            f"sdt/{name}@{profile.name}",
        )

    @pytest.mark.parametrize(
        "ib", ["reentry", "ibtc", "sieve"], ids=lambda s: f"ib={s}"
    )
    def test_sdt_identical_across_ib_mechanisms(self, ib):
        """Engine parity holds whatever IB handling the SDT uses."""
        program = get_workload("gzip_like", "tiny").compile()
        _assert_same(
            _sdt(program, SIMPLE, "oracle", ib=ib),
            _sdt(program, SIMPLE, "threaded", ib=ib),
            f"sdt/gzip_like ib={ib}",
        )


# -- randomized instruction sequences ----------------------------------------

_ALU3 = ("add", "sub", "and", "or", "xor", "nor", "slt", "sltu",
         "mul", "sllv", "srlv", "srav")
_ALUI_SIGNED = ("addi", "slti", "sltiu")
_ALUI_UNSIGNED = ("andi", "ori", "xori")
_SHIFT = ("sll", "srl", "sra")
#: destination pool deliberately excludes s0 (data base) and s1 (divisor)
_DEST = ("t0", "t1", "t2", "t3", "t4", "t5")
_SRC = _DEST + ("zero", "s0", "s1")


def _random_program(seed: int, length: int = 250) -> str:
    rng = random.Random(seed)
    lines = [".text"]
    for index, reg in enumerate(_DEST):
        lines.append(f"    li {reg}, {rng.getrandbits(32)}")
    lines.append(f"    li s0, {DATA_BASE}")
    lines.append("    li s1, 13")  # nonzero divisor, never overwritten
    for _ in range(length):
        shape = rng.randrange(10)
        rd = rng.choice(_DEST)
        if shape < 4:
            lines.append(
                f"    {rng.choice(_ALU3)} {rd}, "
                f"{rng.choice(_SRC)}, {rng.choice(_SRC)}"
            )
        elif shape < 6:
            if rng.random() < 0.5:
                mnemonic = rng.choice(_ALUI_SIGNED)
                imm = rng.randrange(-0x8000, 0x8000)
            else:
                mnemonic = rng.choice(_ALUI_UNSIGNED)
                imm = rng.randrange(0, 0x10000)
            lines.append(f"    {mnemonic} {rd}, {rng.choice(_SRC)}, {imm}")
        elif shape == 6:
            lines.append(
                f"    {rng.choice(_SHIFT)} {rd}, {rng.choice(_SRC)}, "
                f"{rng.randrange(32)}"
            )
        elif shape == 7:
            off = rng.randrange(0, 256, 4)
            if rng.random() < 0.5:
                lines.append(f"    sw {rng.choice(_SRC)}, {off}(s0)")
            else:
                lines.append(f"    lw {rd}, {off}(s0)")
        elif shape == 8:
            lines.append(f"    lui {rd}, {rng.randrange(0, 0x10000)}")
        else:
            lines.append(
                f"    {rng.choice(('div', 'rem'))} {rd}, "
                f"{rng.choice(_SRC)}, s1"
            )
    lines.append("    halt")
    return "\n".join(lines) + "\n"


class TestRandomizedSequences:
    @pytest.mark.parametrize("seed", range(8))
    def test_native_identical(self, seed):
        program = assemble(_random_program(seed))
        _assert_same(
            _native(program, SIMPLE, "oracle"),
            _native(program, SIMPLE, "threaded"),
            f"random[{seed}]",
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_sdt_identical(self, seed):
        program = assemble(_random_program(seed))
        _assert_same(
            _sdt(program, X86_P4, "oracle"),
            _sdt(program, X86_P4, "threaded"),
            f"random-sdt[{seed}]",
        )

    def test_final_register_state_identical(self):
        program = _random_program(99)
        interps = {
            engine: Interpreter(assemble(program), engine=engine)
            for engine in ENGINES
        }
        for interp in interps.values():
            interp.run()
        assert (interps["oracle"].cpu.regs
                == interps["threaded"].cpu.regs)
        base = interps["oracle"].mem
        other = interps["threaded"].mem
        for off in range(0, 256, 4):
            assert (base.load_word(DATA_BASE + off)
                    == other.load_word(DATA_BASE + off))


# -- fuel semantics -----------------------------------------------------------

_FIB = r"""
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() {
    print_int(fib(10));
    return 0;
}
"""


class TestFuelParity:
    """Satellite 1: SDT stops at exactly the same retired count as the
    interpreter when fuel runs out, under both engines."""

    def test_sdt_retires_exactly_fuel(self):
        program = compile_to_program(_FIB)
        for fuel in (1, 2, 17, 100, 101, 500, 1234):
            for engine in ENGINES:
                vm = SDTVM(
                    program, config=SDTConfig(profile=SIMPLE, engine=engine)
                )
                with pytest.raises(FuelExhausted):
                    vm.run(fuel)
                assert vm.retired == fuel, (engine, fuel)

    def test_native_and_sdt_agree_at_tight_fuel(self):
        """Regression: native and SDT pinned to identical retired counts."""
        program = compile_to_program(_FIB)
        for fuel in (50, 333, 2000):
            counts = set()
            for engine in ENGINES:
                interp = Interpreter(program, engine=engine)
                with pytest.raises(FuelExhausted):
                    interp.run(fuel)
                counts.add(interp.retired)
                vm = SDTVM(
                    program, config=SDTConfig(profile=SIMPLE, engine=engine)
                )
                with pytest.raises(FuelExhausted):
                    vm.run(fuel)
                counts.add(vm.retired)
            assert counts == {fuel}

    def test_exact_fuel_completes_without_exhaustion(self):
        program = compile_to_program(_FIB)
        full = Interpreter(program, engine="oracle").run().retired
        for engine in ENGINES:
            assert Interpreter(program, engine=engine).run(full).retired == full
            vm = SDTVM(
                program, config=SDTConfig(profile=SIMPLE, engine=engine)
            )
            assert vm.run(full).retired == full


# -- caching ------------------------------------------------------------------

@pytest.mark.usefixtures("no_faults")
class TestEngineNeutralCaching:
    """Engine choice must not split caches: identical fingerprints, and a
    cache warmed by an oracle run serves threaded runs (and vice versa)."""

    def test_cell_keys_identical_across_engines(self):
        from repro.eval.cells import measure_cell

        cells = {
            engine: measure_cell(
                "gzip_like", "tiny",
                SDTConfig(profile=SIMPLE, engine=engine),
            )
            for engine in ENGINES
        }
        assert (cells["oracle"].fingerprint()
                == cells["threaded"].fingerprint())
        assert cells["oracle"].key() == cells["threaded"].key()

    def test_warm_oracle_cache_serves_threaded_run(self, tmp_path):
        from repro.eval.cells import measure_cell
        from repro.eval.diskcache import DiskCache
        from repro.eval.parallel import execute_cells

        oracle_cell = measure_cell(
            "gzip_like", "tiny", SDTConfig(profile=SIMPLE, engine="oracle")
        )
        threaded_cell = measure_cell(
            "gzip_like", "tiny", SDTConfig(profile=SIMPLE, engine="threaded")
        )

        cache = DiskCache(tmp_path)
        _results, report = execute_cells([oracle_cell], cache=cache)
        assert report.computed == 1 and report.cache_hits == 0

        results, report = execute_cells([threaded_cell], cache=cache)
        assert report.cache_hits == 1 and report.computed == 0
        result = results[threaded_cell.key()]
        assert result is not None
