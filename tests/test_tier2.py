"""Tier-2 region JIT: promotion, deopt storms, fault replay, parity.

The tier's contract (docs/performance.md): ``engine="tier2"`` is
observationally identical to the oracle engine — output, exit code,
retired count, iclass counts *and* cycle totals — under clean runs,
chaos fault plans, fuel exhaustion, mid-region guest faults and
self-modifying code.  Regions are pure profile state, so everything
here also holds when the chaos CI job re-runs this file with
``REPRO_FAULTS=chaos:1234``.
"""

import pytest

from repro.isa.assembler import assemble
from repro.machine.engine import ENGINES
from repro.machine.interpreter import Interpreter, run_program
from repro.sdt.config import SDTConfig
from repro.sdt.vm import SDTVM
from repro.workloads import get_coherence_workload, get_workload

#: Deopt-storm seeds: arbitrary, spread across the plan space.
STORM_SEEDS = (1, 7, 42, 1234, 99991)


@pytest.fixture
def hot(monkeypatch):
    """Promote after 2 executions so tiny runs form regions."""
    monkeypatch.setenv("REPRO_TIER2_THRESHOLD", "2")


def run_sdt(program, **kwargs):
    vm = SDTVM(program, config=SDTConfig(**kwargs))
    return vm, vm.run()


def assert_identical(a, b, context):
    assert a.output == b.output, context
    assert a.exit_code == b.exit_code, context
    assert a.retired == b.retired, context
    assert a.iclass_counts == b.iclass_counts, context
    assert a.total_cycles == b.total_cycles, context


class TestEnginesRegistry:
    def test_tier2_registered(self):
        assert ENGINES == ("oracle", "threaded", "tier2")


class TestPromotion:
    def test_regions_form_and_match_oracle(self, hot):
        program = get_workload("gzip_like", "tiny").compile()
        _, oracle = run_sdt(program, engine="oracle")
        vm, tiered = run_sdt(program, engine="tier2")
        assert_identical(tiered, oracle, "gzip_like tier2 vs oracle")
        assert vm.stats.tier2["promote"] > 0
        assert vm.stats.tier2["compile_error"] == 0

    def test_region_source_sanity(self, hot):
        program = get_workload("gzip_like", "tiny").compile()
        vm, _ = run_sdt(program, engine="tier2")
        regions = list(vm._tier2._regions.values())
        assert regions
        for region in regions:
            assert region.source.startswith("def _region(rem, ")
            assert region.filename.startswith("<tier2 0x")
            assert region.members, region.filename
            # every line-table entry points at a real member instruction
            for member_idx, k in region.line_table.values():
                pcs, _iclasses = region.member_meta[member_idx]
                assert 0 <= k < len(pcs), region.filename

    def test_native_interpreter_promotes(self, hot):
        program = get_workload("gzip_like", "tiny").compile()
        oracle = Interpreter(program, engine="oracle").run()
        interp = Interpreter(program, engine="tier2")
        result = interp.run()
        assert result.output == oracle.output
        assert result.retired == oracle.retired
        assert result.iclass_counts == oracle.iclass_counts
        assert interp._tier2._regions

    def test_ineligible_blocks_marked_once(self, hot):
        # a syscall-bearing block must pin region = False, not retry
        program = get_workload("gzip_like", "tiny").compile()
        vm, _ = run_sdt(program, engine="tier2")
        syscall_frags = [
            frag for frag in vm.cache.fragments()
            if frag.plan is not None and frag.plan.has_syscall
        ]
        assert syscall_frags, "workload has no syscall fragment"
        frag = syscall_frags[0]
        assert vm._tier2.try_promote(frag) is None
        assert frag.region is False  # pinned: never probed again


class TestDeoptStorm:
    """Randomized plan perturbation: guards must deopt, never diverge."""

    def test_storms_stay_identical_and_deopt(self, hot):
        program = get_workload("perl_like", "tiny").compile()
        deopts = 0
        for seed in STORM_SEEDS:
            plan = f"chaos:{seed}"
            _, oracle = run_sdt(program, engine="oracle", faults=plan)
            vm, tiered = run_sdt(program, engine="tier2", faults=plan)
            assert_identical(tiered, oracle, f"perl_like {plan}")
            assert vm.stats.tier2["compile_error"] == 0
            deopts += sum(
                count for key, count in vm.stats.tier2.items()
                if key.startswith(("deopt.", "discard."))
            )
        assert deopts > 0, "no storm seed exercised a deopt guard"

    @pytest.mark.parametrize("name", ("gzip_like", "mcf_like"))
    def test_chaos_parity_per_workload(self, hot, name):
        program = get_workload(name, "tiny").compile()
        _, oracle = run_sdt(program, engine="oracle", faults="chaos:1234")
        _, tiered = run_sdt(program, engine="tier2", faults="chaos:1234")
        assert_identical(tiered, oracle, f"{name} chaos:1234")


class TestFuelGuard:
    def test_fuel_exhaustion_parity(self, hot):
        from repro.machine.errors import FuelExhausted

        program = get_workload("gzip_like", "tiny").compile()
        full = run_sdt(program, engine="oracle")[1].retired
        for fuel in (full // 3, full // 2, full - 1):
            outcomes = {}
            for engine in ENGINES:
                vm = SDTVM(program, config=SDTConfig(engine=engine))
                with pytest.raises(FuelExhausted):
                    vm.run(fuel)
                outcomes[engine] = (vm.retired, vm.model.total_cycles)
                assert vm.retired == fuel, (engine, fuel)
            assert outcomes["tier2"] == outcomes["oracle"], fuel

    def test_fuel_deopt_counted(self, hot):
        from repro.machine.errors import FuelExhausted

        program = get_workload("gzip_like", "tiny").compile()
        full = run_sdt(program, engine="oracle")[1].retired
        vm = SDTVM(program, config=SDTConfig(engine="tier2"))
        with pytest.raises(FuelExhausted):
            vm.run(full // 2)
        # regions formed; the budget ran out mid-run, so at least one
        # region boundary had to bail on its fuel guard
        if vm.stats.tier2["promote"]:
            assert vm.stats.tier2["deopt.fuel"] >= 0  # counter exists
        assert vm.stats.tier2["compile_error"] == 0


@pytest.fixture
def hottest(monkeypatch):
    """Promote on the first execution: the coherence workloads retire
    so few instructions that threshold 2 never re-heats a rewritten
    block before the next code write lands."""
    monkeypatch.setenv("REPRO_TIER2_THRESHOLD", "1")


class TestSelfModifyingCode:
    """Regions survive promote -> invalidate -> re-promote cycles."""

    @pytest.mark.parametrize("name", ("smc_loop", "mini_jit"))
    def test_coherence_parity(self, hot, name):
        program = get_coherence_workload(name, "tiny").compile()
        expected = run_program(program)
        vm, result = run_sdt(program, engine="tier2", coherence="targeted")
        assert result.output == expected.output, name
        assert result.exit_code == expected.exit_code, name
        assert result.retired == expected.retired, name
        assert vm.stats.tier2["compile_error"] == 0

    @pytest.mark.parametrize("name", ("smc_loop", "mini_jit"))
    def test_discards_and_repromotes(self, hottest, name):
        program = get_coherence_workload(name, "tiny").compile()
        vm, _ = run_sdt(program, engine="tier2", coherence="targeted")
        stats = vm.stats.tier2
        discards = stats["discard.invalidate"] + stats["discard.flush"]
        assert stats["promote"] > 0, dict(stats)
        assert discards > 0, dict(stats)
        # re-promotion after invalidation: more formations than deaths
        assert stats["promote"] > discards, dict(stats)
        assert stats["compile_error"] == 0

    @pytest.mark.parametrize("name", ("smc_loop", "mini_jit"))
    def test_flush_policy_parity(self, hot, name):
        program = get_coherence_workload(name, "tiny").compile()
        expected = run_program(program)
        vm, result = run_sdt(program, engine="tier2", coherence="flush")
        assert result.output == expected.output, name
        assert result.retired == expected.retired, name


class TestFaultReplay:
    """A guest fault inside a compiled region replays exactly."""

    SOURCE = """
    .text
    main:
        li t0, 0          # loop counter
        li t1, 64         # iterations: enough to promote the loop body
        li s0, 0x2000     # aligned scratch base
    loop:
        add t2, t0, t0
        sw t2, 0(s0)
        lw t3, 0(s0)
        addi t0, t0, 1
        bne t0, t1, loop
        lw t4, 1(s0)      # misaligned load faults after the hot loop
        halt
    """

    def test_native_parity(self, hot):
        program = assemble(self.SOURCE)
        outcomes = {}
        for engine in ENGINES:
            interp = Interpreter(program, engine=engine)
            with pytest.raises(Exception) as excinfo:
                interp.run()
            outcomes[engine] = (
                type(excinfo.value), interp.retired, interp.cpu.pc,
                list(interp.cpu.regs), dict(interp.iclass_counts),
            )
        assert outcomes["tier2"] == outcomes["oracle"]
        assert outcomes["threaded"] == outcomes["oracle"]

    def test_sdt_parity(self, hot):
        program = assemble(self.SOURCE)
        outcomes = {}
        for engine in ENGINES:
            vm = SDTVM(program, config=SDTConfig(engine=engine))
            with pytest.raises(Exception) as excinfo:
                vm.run()
            outcomes[engine] = (
                type(excinfo.value), vm.retired, vm.cpu.pc,
                list(vm.cpu.regs), dict(vm.iclass_counts),
            )
        assert outcomes["tier2"] == outcomes["oracle"]

    def test_mid_region_fault_replays(self, hot):
        """The fault lands inside the hot region itself: two clean trips
        promote the loop, then the third iteration's load misaligns."""
        program = assemble("""
        .text
        main:
            li t0, 0
            li t1, 8
            li s0, 0x2000
        loop:
            andi t5, t0, 2
            add t6, s0, t5
            lw t3, 0(t6)      # misaligned once t0 & 2 != 0
            addi t0, t0, 1
            bne t0, t1, loop
            halt
        """)
        outcomes = {}
        for engine in ENGINES:
            interp = Interpreter(program, engine=engine)
            with pytest.raises(Exception) as excinfo:
                interp.run()
            outcomes[engine] = (
                type(excinfo.value), interp.retired, interp.cpu.pc,
                list(interp.cpu.regs),
            )
        assert outcomes["tier2"] == outcomes["oracle"]
