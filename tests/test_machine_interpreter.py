"""Interpreter behaviour: syscalls, counting, fuel, observers, CPU state."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.opcodes import InstrClass
from repro.machine.cpu import CPUState, s32, u32
from repro.machine.errors import FuelExhausted, InvalidSyscall
from repro.machine.interpreter import Interpreter

from conftest import run_asm


class TestCPUState:
    def test_zero_register_immutable(self):
        cpu = CPUState()
        cpu.write(0, 99)
        assert cpu.read(0) == 0

    def test_writes_masked_to_32_bits(self):
        cpu = CPUState()
        cpu.write(1, -1)
        assert cpu.read(1) == 0xFFFFFFFF
        cpu.write(2, 1 << 35)
        assert cpu.read(2) == 0

    def test_snapshot_captures_pc_and_regs(self):
        cpu = CPUState(pc=0x400000, sp=0x7000)
        snap = cpu.snapshot()
        cpu.write(5, 1)
        assert snap != cpu.snapshot()

    def test_u32_s32_helpers(self):
        assert u32(-1) == 0xFFFFFFFF
        assert s32(0xFFFFFFFF) == -1
        assert s32(0x7FFFFFFF) == 0x7FFFFFFF
        assert s32(0x80000000) == -0x80000000


class TestSyscalls:
    def test_print_int_negative(self):
        out = run_asm(
            ".text\nmain:\nli a0, -42\nli v0, 1\nsyscall\n"
            "li v0, 10\nsyscall\n"
        )
        assert out.output == "-42"

    def test_print_char_and_string(self):
        out = run_asm(
            '.text\nmain:\nli a0, 65\nli v0, 11\nsyscall\n'
            "la a0, s\nli v0, 4\nsyscall\nli v0, 10\nsyscall\n"
            '.data\ns: .asciiz "bc"\n'
        )
        assert out.output == "Abc"

    def test_exit_code(self):
        out = run_asm(".text\nmain:\nli a0, 3\nli v0, 10\nsyscall\n")
        assert out.exit_code == 3

    def test_read_int_from_inputs(self):
        out = run_asm(
            ".text\nmain:\nli v0, 5\nsyscall\nmv a0, v0\nli v0, 1\n"
            "syscall\nli v0, 10\nsyscall\n",
            inputs=[123],
        )
        assert out.output == "123"

    def test_read_int_exhausted_returns_zero(self):
        out = run_asm(
            ".text\nmain:\nli v0, 5\nsyscall\nmv a0, v0\nli v0, 1\n"
            "syscall\nli v0, 10\nsyscall\n",
        )
        assert out.output == "0"

    def test_sbrk_monotonic_and_aligned(self):
        out = run_asm(
            ".text\nmain:\nli a0, 5\nli v0, 9\nsyscall\nmv t0, v0\n"
            "li a0, 8\nli v0, 9\nsyscall\nsub a0, v0, t0\n"
            "li v0, 1\nsyscall\nli v0, 10\nsyscall\n"
        )
        assert int(out.output) == 16  # 5 rounded up to 16

    def test_invalid_service_faults(self):
        prog = assemble(".text\nmain:\nli v0, 77\nsyscall\n")
        with pytest.raises(InvalidSyscall):
            Interpreter(prog).run()

    def test_halt_without_exit_sets_code_zero(self):
        out = run_asm(".text\nmain:\nhalt\n")
        assert out.exit_code == 0


class TestCounting:
    def test_retired_counts_all(self):
        out = run_asm(".text\nmain:\nnop\nnop\nli v0, 10\nsyscall\n")
        assert out.retired == 4

    def test_iclass_counts(self):
        out = run_asm(
            ".text\nmain:\njal f\nli v0, 10\nsyscall\nf:\nret\n"
        )
        assert out.iclass_counts[InstrClass.CALL] == 1
        assert out.iclass_counts[InstrClass.RET] == 1
        assert out.indirect_branches == 1

    def test_fuel_exhaustion(self):
        prog = assemble(".text\nmain:\nloop:\nj loop\n")
        with pytest.raises(FuelExhausted):
            Interpreter(prog).run(fuel=100)


class TestObserver:
    def test_observer_sees_every_instruction(self):
        prog = assemble(".text\nmain:\nnop\nli v0, 10\nsyscall\n")
        seen = []
        interp = Interpreter(
            prog, observer=lambda pc, instr, next_pc: seen.append(pc)
        )
        result = interp.run()
        assert len(seen) == result.retired
        assert seen[0] == prog.entry

    def test_observer_gets_branch_resolution(self):
        prog = assemble(
            ".text\nmain:\nli t0, 1\nbeq t0, zero, skip\nli v0, 10\n"
            "syscall\nskip:\nhalt\n"
        )
        transfers = []

        def observe(pc, instr, next_pc):
            if instr.iclass is InstrClass.BRANCH:
                transfers.append(next_pc == pc + 4)

        Interpreter(prog, observer=observe).run()
        assert transfers == [True]  # not taken -> fallthrough


class TestDeterminism:
    def test_same_program_same_result(self):
        source = (
            ".text\nmain:\nli t0, 0\nli t1, 100\nloop:\n"
            "add t0, t0, t1\naddi t1, t1, -1\nbnez t1, loop\n"
            "mv a0, t0\nli v0, 1\nsyscall\nli v0, 10\nsyscall\n"
        )
        first = run_asm(source)
        second = run_asm(source)
        assert first.output == second.output == "5050"
        assert first.retired == second.retired
