"""Report rendering and persistence."""

import csv

import pytest

from repro.eval.report import format_table, geomean, write_results


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_identity(self):
        assert geomean([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_less_sensitive_to_outliers_than_mean(self):
        values = [1.0, 1.0, 100.0]
        assert geomean(values) < sum(values) / 3


class TestFormatTable:
    def test_alignment_and_structure(self):
        text = format_table(
            "Demo", ["name", "value"], [["alpha", 1.5], ["b", 20]]
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert lines[1] == "===="
        assert "name" in lines[2] and "value" in lines[2]
        assert "alpha" in lines[4]
        assert "1.500" in lines[4]  # floats to 3 decimals

    def test_empty_rows(self):
        text = format_table("T", ["a"], [])
        assert "a" in text

    def test_wide_values_stretch_columns(self):
        text = format_table("T", ["x"], [["averyverylongvalue"]])
        header, sep, row = text.splitlines()[2:5]
        assert len(sep) >= len("averyverylongvalue")


class TestWriteResults:
    def test_writes_txt_and_csv(self, tmp_path, capsys):
        write_results(
            "demo", "Demo Table", ["name", "value"],
            [["a", 1.0], ["b", 2.5]], results_dir=tmp_path,
        )
        text = (tmp_path / "demo.txt").read_text()
        assert "Demo Table" in text
        with open(tmp_path / "demo.csv") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["name", "value"]
        assert rows[1] == ["a", "1.000"]
        # also printed for live runs
        assert "Demo Table" in capsys.readouterr().out

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        write_results("x", "T", ["a"], [["v"]], results_dir=target)
        assert (target / "x.txt").exists()
