"""HostModel cycle accounting and the native cost observer."""

from repro.host.costs import Category, HostModel, NativeCostObserver
from repro.host.profile import PROFILES, SIMPLE, SPARC_US3, X86_K8, X86_P4, get_profile
from repro.isa.opcodes import InstrClass
from repro.machine.interpreter import Interpreter
from repro.isa.assembler import assemble

import pytest


class TestProfiles:
    def test_presets_registered(self):
        assert {"simple", "x86_p4", "x86_k8", "sparc_us3"} <= set(PROFILES)

    def test_get_profile(self):
        assert get_profile("x86_p4") is X86_P4
        with pytest.raises(KeyError):
            get_profile("vax")

    def test_derive_overrides(self):
        fast = X86_P4.derive("fastmiss", mispredict_penalty=1)
        assert fast.mispredict_penalty == 1
        assert fast.map_lookup == X86_P4.map_lookup
        assert X86_P4.mispredict_penalty == 30  # original untouched

    def test_paper_qualities_encoded(self):
        # P4 punishes mispredictions hardest; SPARC's context switch is
        # the most expensive — the two cross-architecture levers of E8.
        assert X86_P4.mispredict_penalty > X86_K8.mispredict_penalty
        assert X86_P4.mispredict_penalty > SPARC_US3.mispredict_penalty
        assert SPARC_US3.context_half_switch > X86_P4.context_half_switch
        assert SPARC_US3.ras_entries < X86_K8.ras_entries

    def test_all_classes_priced(self):
        for profile in PROFILES.values():
            for iclass in InstrClass:
                assert profile.instr_cycles(iclass) >= 0


class TestHostModel:
    def test_charge_instr_accumulates(self):
        model = HostModel(SIMPLE)
        model.charge_instr(InstrClass.ALU)
        model.charge_instr(InstrClass.LOAD)
        expected = (
            SIMPLE.class_cycles[InstrClass.ALU]
            + SIMPLE.class_cycles[InstrClass.LOAD]
        )
        assert model.cycles[Category.APP] == expected
        assert model.total_cycles == expected

    def test_cond_branch_penalty_on_miss(self):
        model = HostModel(SIMPLE)
        assert model.cond_branch(0x100, taken=True) is True  # cold miss
        assert model.cycles[Category.COND_MISPREDICT] == SIMPLE.mispredict_penalty

    def test_indirect_jump_categorised(self):
        model = HostModel(SIMPLE)
        model.indirect_jump(0x10, 0x20, category=Category.SIEVE)
        assert model.cycles[Category.SIEVE] == SIMPLE.mispredict_penalty
        assert model.cycles[Category.IND_MISPREDICT] == 0

    def test_ras_call_return_pair(self):
        model = HostModel(SIMPLE)
        model.host_call(0x104)
        assert model.host_return(0x104) is False
        assert model.total_cycles == 0

    def test_overhead_excludes_app_and_native_mispredicts(self):
        model = HostModel(SIMPLE)
        model.charge_instr(InstrClass.ALU)
        model.cond_branch(0, taken=True)  # miss -> COND_MISPREDICT
        model.charge(Category.IBTC, 10)
        assert model.overhead_cycles == 10

    def test_breakdown_has_all_categories(self):
        model = HostModel(SIMPLE)
        breakdown = model.breakdown()
        assert set(breakdown) == {c.value for c in Category}


class TestNativeObserver:
    def _run(self, source: str, profile=SIMPLE):
        model = HostModel(profile)
        interp = Interpreter(
            assemble(source), observer=NativeCostObserver(model)
        )
        result = interp.run()
        return model, result

    def test_straightline_cost_is_sum_of_class_costs(self):
        model, result = self._run(
            ".text\nmain:\nnop\nnop\nli v0, 10\nsyscall\n"
        )
        expected = (
            2 * SIMPLE.class_cycles[InstrClass.SHIFT]   # nops are sll
            + SIMPLE.class_cycles[InstrClass.ALU]        # li -> addi
            + SIMPLE.class_cycles[InstrClass.SYSCALL]
        )
        assert model.total_cycles == expected

    def test_returns_train_ras(self):
        # balanced call/ret: after the cold call, rets predict perfectly
        model, _ = self._run(
            ".text\nmain:\n"
            "li t0, 50\nloop:\njal f\naddi t0, t0, -1\nbnez t0, loop\n"
            "li v0, 10\nsyscall\n"
            "f:\nret\n"
        )
        assert model.ras.misses == 0
        assert model.ras.hits == 50

    def test_polymorphic_ijump_mispredicts(self):
        model, _ = self._run(
            ".text\nmain:\n"
            "li t0, 20\n"
            "loop:\n"
            "andi t1, t0, 1\nsll t1, t1, 2\nla t2, tab\nadd t2, t2, t1\n"
            "lw t2, 0(t2)\njr t2\n"
            "a:\nj cont\n"
            "b:\nj cont\n"
            "cont:\naddi t0, t0, -1\nbnez t0, loop\nli v0, 10\nsyscall\n"
            ".data\ntab: .word a, b\n.text\n"
        )
        # alternating targets: the BTB gets (nearly) every one wrong
        assert model.btb.misses >= 19

    def test_monomorphic_ijump_predicts(self):
        model, _ = self._run(
            ".text\nmain:\n"
            "li t0, 20\n"
            "loop:\nla t2, a\njr t2\n"
            "a:\naddi t0, t0, -1\nbnez t0, loop\nli v0, 10\nsyscall\n"
        )
        assert model.btb.misses == 1  # cold only
        assert model.btb.hits == 19
