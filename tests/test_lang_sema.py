"""MiniC semantic analysis."""

import pytest

from repro.lang.errors import SemaError
from repro.lang.parser import parse
from repro.lang.sema import analyze


def check(source: str):
    return analyze(parse(source))


class TestValidPrograms:
    def test_minimal(self):
        info = check("int main() { return 0; }")
        assert "main" in info.functions

    def test_mutual_recursion_without_prototypes(self):
        check(
            "int even(int n) { if (n == 0) return 1; return odd(n - 1); }"
            "int odd(int n) { if (n == 0) return 0; return even(n - 1); }"
            "int main() { return even(4); }"
        )

    def test_global_scalars_and_arrays(self):
        info = check("int g; int a[4]; int main() { g = a[0]; return g; }")
        assert info.globals["a"].is_array
        assert info.globals["a"].size == 4
        assert not info.globals["g"].is_array

    def test_shadowing_in_nested_scopes(self):
        check(
            "int x; int main() { int x = 1; { int x = 2; } return x; }"
        )

    def test_function_pointer_flow(self):
        check(
            "int f(int x) { return x; }"
            "int main() { int p = &f; return p(3); }"
        )

    def test_initializer_referencing_function(self):
        check("int t[] = { &main }; int main() { return 0; }")


class TestDeclarationErrors:
    @pytest.mark.parametrize(
        "source,fragment",
        [
            ("int main() { return x; }", "undeclared"),
            ("int main() { int a; int a; return 0; }", "redeclaration"),
            ("int f() {} int f() {} int main() {}", "redeclaration"),
            ("int g; int g; int main() {}", "redeclaration"),
            ("int print_int; int main() {}", "redeclaration"),
            ("int f() {}", "no main"),
            ("int main(int x) { return x; }", "no arguments"),
            ("int f(int a, int a) { return a; } int main() {}", "duplicate"),
            ("int t[] = { &nosuch }; int main() {}", "unknown name"),
        ],
    )
    def test_rejected(self, source, fragment):
        with pytest.raises(SemaError, match=fragment):
            check(source)

    def test_sibling_scopes_may_reuse_names(self):
        check("int main() { { int x; x = 1; } { int x; x = 2; } return 0; }")

    def test_use_before_decl_in_block_rejected(self):
        with pytest.raises(SemaError, match="undeclared"):
            check("int main() { x = 1; int x; return 0; }")


class TestCallChecking:
    def test_arity_mismatch(self):
        with pytest.raises(SemaError, match="takes 2 arguments"):
            check("int f(int a, int b) { return a; } int main() { return f(1); }")

    def test_builtin_arity(self):
        with pytest.raises(SemaError, match="takes 1 arguments"):
            check("int main() { print_int(1, 2); return 0; }")

    def test_too_many_args(self):
        args = ", ".join("1" for _ in range(9))
        with pytest.raises(SemaError, match="too many arguments"):
            check(
                "int f(int a) { return a; }"
                f"int main() {{ return f({args}); }}"
            )

    def test_indirect_call_any_arity(self):
        check("int main() { int p = 0; return p(1, 2, 3); }")

    def test_print_str_requires_literal(self):
        with pytest.raises(SemaError, match="string literal"):
            check("int main() { int s = 0; print_str(s); return 0; }")

    def test_local_shadows_function_forces_indirect(self):
        # `f` resolves to the local, so the call is indirect — no arity check
        check(
            "int f(int a, int b) { return a + b; }"
            "int main() { int f = 0; return f(1); }"
        )


class TestLvaluesAndAddresses:
    def test_assign_to_array_rejected(self):
        with pytest.raises(SemaError, match="array"):
            check("int a[3]; int main() { a = 1; return 0; }")

    def test_assign_to_local_array_rejected(self):
        with pytest.raises(SemaError, match="array"):
            check("int main() { int a[3]; a = 1; return 0; }")

    def test_assign_to_function_rejected(self):
        with pytest.raises(SemaError, match="function"):
            check("int f() { return 0; } int main() { f = 1; return 0; }")

    def test_address_of_expression_rejected(self):
        with pytest.raises(SemaError, match="named"):
            check("int main() { int x; return &(x + 1); }")

    def test_address_of_parenthesised_name_ok(self):
        # &(x) is structurally &x after parenthesis removal
        check("int main() { int x; return &(x); }")

    def test_address_of_register_var_rejected(self):
        with pytest.raises(SemaError, match="register"):
            check("int main() { register int x; return &x; }")

    def test_address_of_builtin_rejected(self):
        with pytest.raises(SemaError, match="builtin"):
            check("int main() { return &print_int; }")


class TestControlContext:
    def test_break_outside_loop(self):
        with pytest.raises(SemaError, match="break"):
            check("int main() { break; return 0; }")

    def test_continue_outside_loop(self):
        with pytest.raises(SemaError, match="continue"):
            check("int main() { continue; return 0; }")

    def test_continue_inside_switch_in_loop_ok(self):
        check(
            "int main() { int i; for (i = 0; i < 3; i++) {"
            "switch (i) { case 0: continue; } } return 0; }"
        )

    def test_break_in_switch_ok(self):
        check("int main() { switch (1) { case 1: break; } return 0; }")


class TestSwitchChecks:
    def test_duplicate_case(self):
        with pytest.raises(SemaError, match="duplicate case"):
            check(
                "int main() { switch (1) { case 1: break; case 1: break; }"
                "return 0; }"
            )

    def test_multiple_defaults(self):
        with pytest.raises(SemaError, match="default"):
            check(
                "int main() { switch (1) { default: break; default: break; }"
                "return 0; }"
            )


class TestStringLiterals:
    def test_string_outside_print_str_rejected(self):
        with pytest.raises(SemaError, match="print_str"):
            check('int main() { int x = "nope"; return 0; }')

    def test_string_as_plain_arg_rejected(self):
        with pytest.raises(SemaError, match="print_str"):
            check('int f(int s) { return s; } int main() { return f("x"); }')
