"""IB-site classification and bound recovery (repro.analysis.classify)."""

from conftest import ALL_IB_KINDS_SOURCE

from repro.analysis.classify import analyze_program, constant_states
from repro.isa.assembler import assemble
from repro.isa.registers import reg_number
from repro.lang import compile_to_program

#: Hand-written canonical jump-table idiom: 3 cases plus a default.
TABLE_SOURCE = """
.text
main:
    li    t0, 1
    sltiu t9, t0, 3
    beq   t9, zero, default
    sll   t8, t0, 2
    la    t9, table
    add   t8, t8, t9
    lw    t8, 0(t8)
    jr    t8
case0:
    halt
case1:
    halt
case2:
    halt
default:
    halt

.data
table: .word case0, case1, case2
"""


def analyze_source(source: str):
    return analyze_program(assemble(source))


class TestJumpTableRecovery:
    def test_recovers_table_site(self):
        analysis = analyze_source(TABLE_SOURCE)
        program = analysis.program
        sites = analysis.sites_by_role()
        assert len(sites["jump-table"]) == 1
        site = sites["jump-table"][0]
        assert site.bounded
        assert site.table is not None
        assert site.table.span == 3
        assert site.targets == frozenset(
            program.symbol(n) for n in ("case0", "case1", "case2")
        )
        assert site.bound == 3

    def test_table_words_are_not_address_taken(self):
        # table slots must not be misread as function entries
        analysis = analyze_source(TABLE_SOURCE)
        program = analysis.program
        for name in ("case0", "case1", "case2"):
            assert program.symbol(name) not in analysis.address_taken

    def test_unrecovered_jr_gets_trivial_sound_bound(self):
        analysis = analyze_source(".text\nmain:\njr t0\n")
        (site,) = analysis.sites.values()
        assert site.role == "computed-jump"
        assert not site.bounded
        assert site.bound == len(analysis.cfg.linear())


class TestReturnBounds:
    def test_return_bound_is_caller_return_sites(self):
        analysis = analyze_source(
            ".text\nmain:\njal f\njal f\nhalt\nf:\njr ra\n"
        )
        program = analysis.program
        ret = analysis.sites[program.symbol("f")]
        assert ret.role == "return"
        assert ret.bounded
        # one past each of the two jal sites
        assert ret.targets == frozenset(
            {program.entry + 4, program.entry + 8}
        )

    def test_ret_opcode_also_classified_as_return(self):
        analysis = analyze_source(
            ".text\nmain:\njal f\nhalt\nf:\nret\n"
        )
        (site,) = [s for s in analysis.sites.values() if s.role == "return"]
        assert site.kind == "ret"
        assert site.bound == 1

    def test_address_taken_function_includes_indirect_call_returns(self):
        analysis = analyze_source(
            ".text\n"
            "main:\n"
            "    la   t0, f\n"
            "    jalr t0\n"
            "    jal  f\n"
            "    halt\n"
            "f:\n"
            "    jr ra\n"
        )
        program = analysis.program
        ret = analysis.sites[program.symbol("f")]
        jalr_pc = program.entry + 8   # after the la expansion (lui+ori)
        assert jalr_pc + 4 in ret.targets       # indirect call return site
        assert program.entry + 16 in ret.targets  # jal return site


class TestIndirectCalls:
    def test_icall_bound_is_address_taken_set(self):
        analysis = analyze_source(
            ".text\nmain:\nla t0, f\njalr t0\nhalt\nf:\njr ra\n"
        )
        program = analysis.program
        (icall,) = analysis.sites_by_role()["indirect-call"]
        assert icall.bounded
        assert icall.targets == analysis.address_taken
        assert program.symbol("f") in icall.targets


class TestFunctions:
    def test_jal_targets_partition_text(self):
        analysis = analyze_source(
            ".text\nmain:\njal f\nhalt\nf:\njr ra\n"
        )
        program = analysis.program
        f = analysis.function_of(program.symbol("f"))
        assert f is not None
        assert f.entry == program.symbol("f")
        assert f.name == "f"
        assert analysis.function_of(program.entry).name == "main"


class TestConstantStates:
    def test_li_tracks_lui_ori_and_addi(self):
        program = assemble(
            ".text\nmain:\nli t0, 0x12345678\naddi t0, t0, 8\nsw t1, 0(t0)\nhalt\n"
        )
        states = constant_states(analyze_program(program).cfg.linear())
        t0 = reg_number("t0")
        # state *before* the store reflects both the li and the addi
        sw_state = next(s for _, i, s in states if i.op.value == "sw")
        assert sw_state[t0] == 0x12345680

    def test_constants_reset_at_control_transfers(self):
        program = assemble(
            ".text\nmain:\nli t0, 4\njal f\nsw t1, 0(t0)\nhalt\nf:\njr ra\n"
        )
        analysis = analyze_program(program)
        states = constant_states(analysis.cfg.linear())
        t0 = reg_number("t0")
        sw_state = next(s for _, i, s in states if i.op.value == "sw")
        assert t0 not in sw_state


class TestTableRecoveryHardening:
    def test_table_running_past_image_rejected(self):
        # guard claims 8 entries but only 3 words exist: recovery must
        # refuse entirely (silent truncation would be unsound)
        analysis = analyze_source(TABLE_SOURCE.replace(
            "sltiu t9, t0, 3", "sltiu t9, t0, 8"
        ))
        assert not analysis.sites_by_role().get("jump-table")
        (site,) = analysis.sites.values()
        assert site.role == "computed-jump"
        assert not site.bounded

    def test_table_with_non_text_word_rejected(self):
        # one slot holds a data address, not code: recovery must refuse
        analysis = analyze_source(TABLE_SOURCE.replace(
            ".word case0, case1, case2", ".word case0, case1, table"
        ))
        assert not analysis.sites_by_role().get("jump-table")

    def test_def_scan_does_not_cross_call_boundary(self):
        # the table-address computation is separated from the jr by a
        # call: the callee may clobber the register, so the def window
        # must stop at the block boundary and recovery must refuse
        analysis = analyze_source("""
.text
main:
    li    t0, 1
    sltiu t9, t0, 3
    beq   t9, zero, default
    sll   t8, t0, 2
    la    t9, table
    add   t8, t8, t9
    lw    t8, 0(t8)
    jal   helper
    jr    t8
case0:
    halt
case1:
    halt
case2:
    halt
default:
    halt
helper:
    jr    ra

.data
table: .word case0, case1, case2
""")
        roles = analysis.sites_by_role()
        assert not roles.get("jump-table")
        (jr,) = roles["computed-jump"]
        assert not jr.bounded


class TestCompiledAllKinds:
    def test_all_three_roles_recovered(self):
        program = compile_to_program(ALL_IB_KINDS_SOURCE)
        analysis = analyze_program(program)
        roles = analysis.sites_by_role()
        assert roles.get("jump-table")
        assert roles.get("indirect-call")
        assert roles.get("return")
        # every site bounded except possibly computed-jump fallbacks
        for site in analysis.sites.values():
            if site.role != "computed-jump":
                assert site.bounded
                assert site.bound == len(site.targets)

    def test_switch_table_span_matches_cases(self):
        program = compile_to_program(ALL_IB_KINDS_SOURCE)
        analysis = analyze_program(program)
        (table_site,) = analysis.sites_by_role()["jump-table"]
        assert table_site.table.span == 7   # cases 0..6; default is the guard
