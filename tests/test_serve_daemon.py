"""Daemon lifecycle against real processes: SIGTERM drain, SIGKILL
crash, journal replay, and byte-identity with a cold serial run.

These tests drive ``repro-sdt serve`` the way an operator would: spawn
the daemon, speak HTTP to it, kill it at awkward moments, and assert
that no accepted request ever yields a wrong result — the serve-layer
analogue of the executor's "results are correct or absent" contract.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.eval.cells import encode_result, measure_cell
from repro.host.profile import SIMPLE
from repro.sdt.config import SDTConfig

pytestmark = pytest.mark.usefixtures("no_faults")

#: ~0.2-0.4s of real computation: long enough to be killed mid-flight,
#: short enough to keep the suite fast.
SLOW_CELL = {"kind": "measure", "workload": "gzip_like", "scale": "small",
             "config": {"ib": "ibtc"}, "fuel": 30_000_000}


def start_daemon(tmp_path, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env.pop("REPRO_FAULTS", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--state-dir", str(tmp_path / "state"),
         "--cache-dir", str(tmp_path / "cache"),
         "--jobs", "1", "--drain-timeout", "20", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        env=env, cwd="/root/repo",
    )
    line = proc.stdout.readline()
    ready = json.loads(line)
    assert ready["event"] == "ready"
    return proc, ready


def request(port, method, path, payload=None, timeout=60):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode() if payload is not None else None,
        method=method,
        headers={"Connection": "close"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def wait_for_idle(port, timeout=60):
    """Poll /metrics until no work is queued or in flight."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            _, metrics = request(port, "GET", "/metrics", timeout=5)
            queue = metrics["queue"]
            if queue["inflight"] == 0 and queue["depth"] == 0:
                return metrics
        except (OSError, ValueError):
            pass
        time.sleep(0.05)
    raise AssertionError("daemon never went idle")


def reference_result():
    """The cold, serial, in-process result for SLOW_CELL."""
    cell = measure_cell(
        SLOW_CELL["workload"], SLOW_CELL["scale"],
        SDTConfig(profile=SIMPLE, ib="ibtc"), fuel=SLOW_CELL["fuel"],
    )
    return encode_result(cell.execute())


class TestSigtermDrain:
    def test_clean_shutdown_exits_zero(self, tmp_path):
        proc, ready = start_daemon(tmp_path)
        try:
            status, _ = request(ready["port"], "GET", "/healthz")
            assert status == 200
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0
        stopped = json.loads(out.strip().splitlines()[-1])
        assert stopped == {"event": "stopped", "drained": True}

    def test_in_flight_request_completes_during_drain(self, tmp_path):
        proc, ready = start_daemon(tmp_path)
        port = ready["port"]
        outcome = {}

        def client():
            try:
                outcome["response"] = request(port, "POST", "/v1/cells",
                                              SLOW_CELL, timeout=90)
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                outcome["error"] = exc

        try:
            thread = threading.Thread(target=client)
            thread.start()
            # wait until the request is accepted (journaled + in flight)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                _, metrics = request(port, "GET", "/metrics", timeout=5)
                counters = metrics["metrics"]["counters"]
                if counters.get("serve.accepted", 0) >= 1:
                    break
                time.sleep(0.02)
            else:
                raise AssertionError("request never accepted")
            proc.send_signal(signal.SIGTERM)
            thread.join(timeout=90)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0              # drained cleanly
        status, body = outcome["response"]
        assert status == 200                     # the work was finished
        assert body["source"] == "computed"
        assert body["result"] == reference_result()
        stopped = json.loads(out.strip().splitlines()[-1])
        assert stopped["drained"] is True
        # nothing left pending for a future restart
        journal = (tmp_path / "state" / "journal.jsonl")
        pending = [line for line in journal.read_text().splitlines()
                   if line.strip()]
        accepted = [json.loads(l) for l in pending
                    if json.loads(l)["event"] == "accepted"]
        done = {json.loads(l)["id"] for l in pending
                if json.loads(l)["event"] in ("done", "failed")}
        assert all(record["id"] in done for record in accepted)


class TestCrashReplay:
    def test_sigkill_mid_flight_then_replay_byte_identical(self, tmp_path):
        proc, ready = start_daemon(tmp_path)
        port = ready["port"]

        def client():
            try:
                request(port, "POST", "/v1/cells", SLOW_CELL, timeout=30)
            except Exception:
                pass  # the daemon dies under us: expected

        thread = threading.Thread(target=client)
        thread.start()
        try:
            # wait for acceptance (the journal record is durable), then
            # kill the daemon while the cell is still computing
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                _, metrics = request(port, "GET", "/metrics", timeout=5)
                if metrics["metrics"]["counters"].get("serve.accepted", 0):
                    break
                time.sleep(0.02)
            else:
                raise AssertionError("request never accepted")
            time.sleep(0.05)
        finally:
            proc.kill()                           # SIGKILL: no goodbye
            proc.wait(timeout=30)
        thread.join(timeout=30)

        journal = tmp_path / "state" / "journal.jsonl"
        events = [json.loads(line)["event"]
                  for line in journal.read_text().splitlines()
                  if line.strip()]
        assert "accepted" in events and "done" not in events

        # restart on the same state dir: the accepted request replays
        proc2, ready2 = start_daemon(tmp_path)
        try:
            assert ready2["replayed"] == 1
            metrics = wait_for_idle(ready2["port"])
            assert metrics["metrics"]["counters"]["serve.computed"] == 1
            # the replayed result is in the cache now: a client retry is
            # served without recomputation, byte-identical to a cold run
            status, body = request(ready2["port"], "POST", "/v1/cells",
                                   SLOW_CELL)
            assert status == 200
            assert body["source"].startswith("cache-")
            assert body["result"] == reference_result()
            proc2.send_signal(signal.SIGTERM)
            proc2.communicate(timeout=30)
        finally:
            if proc2.poll() is None:
                proc2.kill()
        assert proc2.returncode == 0

        # third start: the journal compacted, nothing to replay
        proc3, ready3 = start_daemon(tmp_path)
        try:
            assert ready3["replayed"] == 0
            proc3.send_signal(signal.SIGTERM)
            proc3.communicate(timeout=30)
        finally:
            if proc3.poll() is None:
                proc3.kill()


class TestDaemonHttp:
    def test_surfaces_and_errors(self, tmp_path):
        proc, ready = start_daemon(tmp_path)
        port = ready["port"]
        try:
            assert request(port, "GET", "/healthz")[0] == 200
            assert request(port, "GET", "/readyz")[0] == 200
            assert request(port, "GET", "/nope")[0] == 404
            assert request(port, "POST", "/metrics", {})[0] == 405
            status, body = request(port, "POST", "/v1/cells",
                                   {"workload": "not_a_workload"})
            assert status == 400
            assert "workload" in body["error"]
            # raw non-JSON body
            raw = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/cells", data=b"not json",
                method="POST", headers={"Connection": "close"})
            try:
                urllib.request.urlopen(raw, timeout=10)
                raise AssertionError("expected HTTP 400")
            except urllib.error.HTTPError as exc:
                assert exc.code == 400
            proc.send_signal(signal.SIGTERM)
            proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0

    def test_readyz_flips_during_drain_window(self, tmp_path):
        """A drain with in-flight work keeps the process alive briefly;
        new connections are refused once the listener closes."""
        proc, ready = start_daemon(tmp_path)
        port = ready["port"]
        threading.Thread(
            target=lambda: request(port, "POST", "/v1/cells", SLOW_CELL,
                                   timeout=90),
            daemon=True,
        ).start()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            _, metrics = request(port, "GET", "/metrics", timeout=5)
            if metrics["metrics"]["counters"].get("serve.accepted", 0):
                break
            time.sleep(0.02)
        proc.send_signal(signal.SIGTERM)
        # the listener closes promptly: probes now fail to connect
        refused = False
        for _ in range(100):
            try:
                request(port, "GET", "/readyz", timeout=2)
            except (urllib.error.URLError, OSError, socket.timeout):
                refused = True
                break
            time.sleep(0.05)
        proc.communicate(timeout=60)
        assert refused
        assert proc.returncode == 0
