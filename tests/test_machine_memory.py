"""Guest memory: loads/stores, alignment, sparseness, properties."""

import pytest
from hypothesis import given, strategies as st

from repro.machine.errors import AlignmentFault, MemoryFault
from repro.machine.memory import PAGE_SIZE, Memory


class TestBasicAccess:
    def test_byte_roundtrip(self):
        mem = Memory()
        mem.store_byte(100, 0xAB)
        assert mem.load_byte(100) == 0xAB

    def test_word_roundtrip(self):
        mem = Memory()
        mem.store_word(0x1000, 0xDEADBEEF)
        assert mem.load_word(0x1000) == 0xDEADBEEF

    def test_half_roundtrip(self):
        mem = Memory()
        mem.store_half(0x2000, 0x1234)
        assert mem.load_half(0x2000) == 0x1234

    def test_little_endian(self):
        mem = Memory()
        mem.store_word(0, 0x04030201)
        assert [mem.load_byte(i) for i in range(4)] == [1, 2, 3, 4]

    def test_unmapped_reads_zero(self):
        mem = Memory()
        assert mem.load_word(0x7FFF0000) == 0
        assert mem.load_byte(12345) == 0

    def test_store_truncates(self):
        mem = Memory()
        mem.store_word(0, 0x1_2345_6789)
        assert mem.load_word(0) == 0x2345_6789
        mem.store_byte(8, 0x1FF)
        assert mem.load_byte(8) == 0xFF

    def test_cross_page_isolation(self):
        mem = Memory()
        mem.store_word(PAGE_SIZE - 4, 0x11111111)
        mem.store_word(PAGE_SIZE, 0x22222222)
        assert mem.load_word(PAGE_SIZE - 4) == 0x11111111
        assert mem.load_word(PAGE_SIZE) == 0x22222222


class TestFaults:
    @pytest.mark.parametrize("addr", [1, 2, 3, 0x1001, 0x1002, 0x1003])
    def test_misaligned_word(self, addr):
        mem = Memory()
        with pytest.raises(AlignmentFault):
            mem.load_word(addr)
        with pytest.raises(AlignmentFault):
            mem.store_word(addr, 0)

    def test_misaligned_half(self):
        mem = Memory()
        with pytest.raises(AlignmentFault):
            mem.load_half(1)

    def test_out_of_range(self):
        mem = Memory()
        with pytest.raises(MemoryFault):
            mem.load_byte(1 << 32)
        with pytest.raises(MemoryFault):
            mem.store_word((1 << 32) - 2, 1)

    def test_unterminated_cstring(self):
        mem = Memory()
        mem.write_bytes(0, b"abcd")
        with pytest.raises(MemoryFault):
            mem.read_cstring(0, limit=4)


class TestBulk:
    def test_write_read_bytes(self):
        mem = Memory()
        mem.write_bytes(0x100, b"hello world")
        assert mem.read_bytes(0x100, 11) == b"hello world"

    def test_cstring(self):
        mem = Memory()
        mem.write_bytes(0x200, b"guest\0")
        assert mem.read_cstring(0x200) == "guest"

    def test_resident_pages_sparse(self):
        mem = Memory()
        mem.store_byte(0, 1)
        mem.store_byte(0x7000_0000, 1)
        assert mem.resident_pages == 2


class TestFaultAccessKind:
    """The access kind reaches the fault message on every path.

    Pins the ``_fail`` bugfix: the shared fast-path guard used to raise
    ``MemoryFault(addr)`` without saying whether the rejected access was
    a load or a store, so wide-access faults were indistinguishable in
    fault reports while the byte accessors labelled theirs correctly.
    """

    @pytest.mark.parametrize(
        "op, expected",
        [
            (lambda m: m.store_word((1 << 32) - 2, 1), "store"),
            (lambda m: m.store_half((1 << 32) - 1, 1), "store"),
            (lambda m: m.store_byte(1 << 32, 1), "store"),
            (lambda m: m.load_word((1 << 32) - 2), "load"),
            (lambda m: m.load_half((1 << 32) - 1), "load"),
            (lambda m: m.load_byte(1 << 32), "load"),
            (lambda m: m.write_bytes(-4, b"xy"), "store"),
            (lambda m: m.read_bytes(-4, 2), "load"),
            (lambda m: m.write_bytes((1 << 32) - 1, b"xy"), "store"),
            (lambda m: m.read_bytes((1 << 32) - 1, 2), "load"),
        ],
    )
    def test_fault_message_carries_kind(self, op, expected):
        mem = Memory()
        with pytest.raises(MemoryFault) as excinfo:
            op(mem)
        assert expected in str(excinfo.value)

    def test_misalignment_still_alignment_fault(self):
        # in-range misaligned accesses keep raising AlignmentFault; the
        # op threading must not change the fault taxonomy
        mem = Memory()
        with pytest.raises(AlignmentFault):
            mem.store_word(2, 1)
        with pytest.raises(AlignmentFault):
            mem.load_half(1)


def _write_bytes_bytewise(mem: Memory, addr: int, data: bytes) -> None:
    """The historical per-byte bulk-write loop (the reference oracle)."""
    for offset, byte in enumerate(data):
        mem.store_byte(addr + offset, byte)


class TestBulkEquivalence:
    """Page-sliced bulk paths are byte-identical to the per-byte loop."""

    @pytest.mark.parametrize(
        "addr",
        [0, 5, PAGE_SIZE - 3, PAGE_SIZE - 1, 3 * PAGE_SIZE - 7],
    )
    def test_write_bytes_matches_bytewise(self, addr):
        data = bytes(range(256)) * 20  # > one page, crosses boundaries
        sliced, bytewise = Memory(), Memory()
        sliced.write_bytes(addr, data)
        _write_bytes_bytewise(bytewise, addr, data)
        span = len(data) + 8
        start = max(addr - 4, 0)
        assert sliced.read_bytes(start, span) == \
            bytewise.read_bytes(start, span)

    def test_limit_overrun_writes_prefix_then_faults(self):
        # the old loop wrote every in-range byte, then faulted at the
        # first out-of-range address; the sliced path must match exactly
        addr = (1 << 32) - 6
        sliced, bytewise = Memory(), Memory()
        with pytest.raises(MemoryFault) as got:
            sliced.write_bytes(addr, b"abcdefgh")
        with pytest.raises(MemoryFault) as want:
            _write_bytes_bytewise(bytewise, addr, b"abcdefgh")
        assert got.value.addr == want.value.addr == 1 << 32
        assert sliced.read_bytes(addr, 6) == bytewise.read_bytes(addr, 6) \
            == b"abcdef"

    def test_read_bytes_zero_fill_and_overrun(self):
        mem = Memory()
        mem.store_byte(PAGE_SIZE + 1, 0xAA)
        assert mem.read_bytes(PAGE_SIZE - 2, 5) == b"\x00\x00\x00\xaa\x00"
        with pytest.raises(MemoryFault) as excinfo:
            mem.read_bytes((1 << 32) - 2, 4)
        assert excinfo.value.addr == 1 << 32
        assert mem.read_bytes(0, 0) == b""

    @given(
        st.integers(0, 3 * PAGE_SIZE),
        st.binary(min_size=1, max_size=2 * PAGE_SIZE + 17),
    )
    def test_write_bytes_property(self, addr, data):
        sliced, bytewise = Memory(), Memory()
        sliced.write_bytes(addr, data)
        _write_bytes_bytewise(bytewise, addr, data)
        assert sliced.read_bytes(addr, len(data)) == \
            bytewise.read_bytes(addr, len(data)) == data


class TestWriteWatch:
    def _armed(self):
        mem = Memory()
        fired: list[tuple[int, int]] = []
        mem.set_write_watch(lambda addr, length: fired.append((addr, length)))
        return mem, fired

    def test_fires_only_on_watched_pages(self):
        mem, fired = self._armed()
        mem.watch_page(1)
        mem.store_word(0x10, 1)          # page 0: unwatched
        mem.store_word(PAGE_SIZE + 8, 2)  # page 1: watched
        mem.store_half(PAGE_SIZE + 2, 3)
        mem.store_byte(PAGE_SIZE, 4)
        assert fired == [(PAGE_SIZE + 8, 4), (PAGE_SIZE + 2, 2),
                         (PAGE_SIZE, 1)]

    def test_hook_sees_landed_bytes(self):
        # the hook fires *after* the store lands, so a coherence layer
        # can immediately re-read the new code bytes
        mem = Memory()
        seen: list[int] = []
        mem.set_write_watch(lambda addr, length: seen.append(
            mem.load_word(addr)
        ))
        mem.watch_page(0)
        mem.store_word(0x40, 0xCAFEBABE)
        assert seen == [0xCAFEBABE]

    def test_unwatch_and_clear(self):
        mem, fired = self._armed()
        mem.watch_page(0)
        mem.store_word(0, 1)
        mem.unwatch_page(0)
        mem.store_word(0, 2)
        assert len(fired) == 1
        mem.unwatch_page(7)  # absent page index: no-op
        mem.set_write_watch(None)
        assert mem.watched_pages() == frozenset()

    def test_watch_page_requires_hook(self):
        mem = Memory()
        with pytest.raises(ValueError):
            mem.watch_page(0)

    def test_write_bytes_fires_per_page_slice(self):
        mem, fired = self._armed()
        mem.watch_page(0)
        mem.watch_page(1)
        start = PAGE_SIZE - 4
        mem.write_bytes(start, bytes(12))  # 4 bytes page 0, 8 bytes page 1
        assert fired == [(start, 4), (PAGE_SIZE, 8)]

    def test_write_bytes_skips_unwatched_slice(self):
        mem, fired = self._armed()
        mem.watch_page(1)
        mem.write_bytes(PAGE_SIZE - 4, bytes(12))
        assert fired == [(PAGE_SIZE, 8)]


@given(
    st.lists(
        st.tuples(
            st.integers(0, (1 << 30) - 1).map(lambda a: a * 4),
            st.integers(0, 0xFFFFFFFF),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_last_write_wins_property(writes):
    """Memory behaves like a map: last word write to an address wins."""
    mem = Memory()
    expected: dict[int, int] = {}
    for addr, value in writes:
        mem.store_word(addr, value)
        expected[addr] = value
    for addr, value in expected.items():
        assert mem.load_word(addr) == value


@given(st.integers(0, (1 << 32) - 4).map(lambda a: a & ~3),
       st.integers(0, 0xFFFFFFFF))
def test_word_byte_agreement_property(addr, value):
    """A stored word reads back identically through byte loads (LE)."""
    mem = Memory()
    mem.store_word(addr, value)
    recomposed = sum(mem.load_byte(addr + i) << (8 * i) for i in range(4))
    assert recomposed == value
