"""Guest memory: loads/stores, alignment, sparseness, properties."""

import pytest
from hypothesis import given, strategies as st

from repro.machine.errors import AlignmentFault, MemoryFault
from repro.machine.memory import PAGE_SIZE, Memory


class TestBasicAccess:
    def test_byte_roundtrip(self):
        mem = Memory()
        mem.store_byte(100, 0xAB)
        assert mem.load_byte(100) == 0xAB

    def test_word_roundtrip(self):
        mem = Memory()
        mem.store_word(0x1000, 0xDEADBEEF)
        assert mem.load_word(0x1000) == 0xDEADBEEF

    def test_half_roundtrip(self):
        mem = Memory()
        mem.store_half(0x2000, 0x1234)
        assert mem.load_half(0x2000) == 0x1234

    def test_little_endian(self):
        mem = Memory()
        mem.store_word(0, 0x04030201)
        assert [mem.load_byte(i) for i in range(4)] == [1, 2, 3, 4]

    def test_unmapped_reads_zero(self):
        mem = Memory()
        assert mem.load_word(0x7FFF0000) == 0
        assert mem.load_byte(12345) == 0

    def test_store_truncates(self):
        mem = Memory()
        mem.store_word(0, 0x1_2345_6789)
        assert mem.load_word(0) == 0x2345_6789
        mem.store_byte(8, 0x1FF)
        assert mem.load_byte(8) == 0xFF

    def test_cross_page_isolation(self):
        mem = Memory()
        mem.store_word(PAGE_SIZE - 4, 0x11111111)
        mem.store_word(PAGE_SIZE, 0x22222222)
        assert mem.load_word(PAGE_SIZE - 4) == 0x11111111
        assert mem.load_word(PAGE_SIZE) == 0x22222222


class TestFaults:
    @pytest.mark.parametrize("addr", [1, 2, 3, 0x1001, 0x1002, 0x1003])
    def test_misaligned_word(self, addr):
        mem = Memory()
        with pytest.raises(AlignmentFault):
            mem.load_word(addr)
        with pytest.raises(AlignmentFault):
            mem.store_word(addr, 0)

    def test_misaligned_half(self):
        mem = Memory()
        with pytest.raises(AlignmentFault):
            mem.load_half(1)

    def test_out_of_range(self):
        mem = Memory()
        with pytest.raises(MemoryFault):
            mem.load_byte(1 << 32)
        with pytest.raises(MemoryFault):
            mem.store_word((1 << 32) - 2, 1)

    def test_unterminated_cstring(self):
        mem = Memory()
        mem.write_bytes(0, b"abcd")
        with pytest.raises(MemoryFault):
            mem.read_cstring(0, limit=4)


class TestBulk:
    def test_write_read_bytes(self):
        mem = Memory()
        mem.write_bytes(0x100, b"hello world")
        assert mem.read_bytes(0x100, 11) == b"hello world"

    def test_cstring(self):
        mem = Memory()
        mem.write_bytes(0x200, b"guest\0")
        assert mem.read_cstring(0x200) == "guest"

    def test_resident_pages_sparse(self):
        mem = Memory()
        mem.store_byte(0, 1)
        mem.store_byte(0x7000_0000, 1)
        assert mem.resident_pages == 2


@given(
    st.lists(
        st.tuples(
            st.integers(0, (1 << 30) - 1).map(lambda a: a * 4),
            st.integers(0, 0xFFFFFFFF),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_last_write_wins_property(writes):
    """Memory behaves like a map: last word write to an address wins."""
    mem = Memory()
    expected: dict[int, int] = {}
    for addr, value in writes:
        mem.store_word(addr, value)
        expected[addr] = value
    for addr, value in expected.items():
        assert mem.load_word(addr) == value


@given(st.integers(0, (1 << 32) - 4).map(lambda a: a & ~3),
       st.integers(0, 0xFFFFFFFF))
def test_word_byte_agreement_property(addr, value):
    """A stored word reads back identically through byte loads (LE)."""
    mem = Memory()
    mem.store_word(addr, value)
    recomposed = sum(mem.load_byte(addr + i) << (8 * i) for i in range(4))
    assert recomposed == value
