"""Translator-time devirtualization & preseeding (repro.sdt.static_targets).

The soundness contract: turning ``static_targets`` on must never change
architectural results (output/exit/retired — the devirt guard, not the
analysis, is the correctness boundary), every scored dispatch must fall
inside its claimed static bound (``escaped == 0``), and no devirtualized
edge may survive a flush stale (the invariant checker walks the pins).
"""

import pytest

from conftest import ALL_IB_KINDS_SOURCE

from repro.faults.invariants import collect_violations
from repro.host.profile import SIMPLE
from repro.lang import compile_to_program
from repro.sdt.config import SDTConfig
from repro.sdt.vm import SDTVM
from repro.workloads import get_workload

PARITY_WORKLOADS = ("gcc_like", "perl_like", "eon_like", "vortex_like")


def run_pair(name: str, scale: str = "tiny", **kwargs):
    """Run a workload with static_targets off and on; return both."""
    program = get_workload(name, scale).compile()
    results = []
    for static in (False, True):
        config = SDTConfig(profile=SIMPLE, static_targets=static, **kwargs)
        results.append(SDTVM(program, config=config).run())
    return results


class TestArchitecturalParity:
    @pytest.mark.parametrize("name", PARITY_WORKLOADS)
    @pytest.mark.parametrize("ib", ("reentry", "ibtc", "sieve"))
    def test_results_identical_on_off(self, name, ib):
        off, on = run_pair(name, ib=ib)
        assert on.output == off.output
        assert on.exit_code == off.exit_code
        assert on.retired == off.retired

    @pytest.mark.parametrize("returns", ("same", "fast", "shadow",
                                         "retcache"))
    def test_parity_across_return_schemes(self, returns):
        off, on = run_pair("eon_like", ib="ibtc", returns=returns)
        assert (on.output, on.exit_code, on.retired) == (
            off.output, off.exit_code, off.retired
        )

    def test_parity_under_chaos_faults(self):
        off, on = run_pair("gcc_like", ib="ibtc", faults="chaos:1234")
        assert (on.output, on.exit_code, on.retired) == (
            off.output, off.exit_code, off.retired
        )


class TestSoundnessCounters:
    @pytest.mark.parametrize("name", PARITY_WORKLOADS)
    @pytest.mark.parametrize("ib", ("reentry", "ibtc", "sieve"))
    def test_no_escapes_no_mismatches(self, name, ib):
        _, on = run_pair(name, ib=ib)
        static = on.stats.static
        assert static.get("escaped", 0) == 0
        assert static.get("devirt_mismatch", 0) == 0

    def test_precision_is_total_on_suite_workloads(self):
        _, on = run_pair("perl_like", ib="ibtc")
        assert on.stats.static_precision() == 1.0

    def test_static_counters_exported_in_as_dict(self):
        _, on = run_pair("gcc_like", ib="ibtc")
        exported = on.stats.as_dict()["static"]
        assert exported.get("predicted", 0) > 0


class TestPreseeding:
    def test_ibtc_preseed_fires(self):
        _, on = run_pair("perl_like", ib="ibtc")
        assert on.stats.static.get("preseed", 0) > 0

    def test_sieve_preseed_fires(self):
        _, on = run_pair("perl_like", ib="sieve")
        assert on.stats.static.get("preseed", 0) > 0

    def test_compiled_all_kinds_devirt_fill(self):
        program = compile_to_program(ALL_IB_KINDS_SOURCE)
        config = SDTConfig(profile=SIMPLE, ib="ibtc", static_targets=True)
        vm = SDTVM(program, config=config)
        result = vm.run()
        assert result.exit_code == 0
        # monomorphic returns/calls exist: at least one edge devirtualizes
        assert vm.static_rt is not None
        assert result.stats.static.get("devirt_fill", 0) > 0
        assert result.stats.static.get("devirt_hit", 0) > 0


class TestFlushCoherence:
    def test_flushes_demote_devirt_edges_and_stay_coherent(self):
        # a small fragment cache forces repeated whole-cache flushes;
        # every flush must drop the devirt pins (counted) and leave no
        # stale pointer for the invariant walk to find
        program = get_workload("gcc_like", "tiny").compile()
        config = SDTConfig(profile=SIMPLE, ib="ibtc", static_targets=True,
                           fragment_cache_bytes=2048)
        vm = SDTVM(program, config=config)
        result = vm.run()
        assert result.exit_code == 0
        assert result.stats.cache_flushes > 0
        assert result.stats.static.get("devirt_flushed", 0) > 0
        assert collect_violations(vm) == []

    def test_invariant_walk_sees_planted_static_pin(self):
        from repro.faults.inject import tombstone

        program = get_workload("gcc_like", "tiny").compile()
        config = SDTConfig(profile=SIMPLE, ib="ibtc", static_targets=True)
        vm = SDTVM(program, config=config)
        vm.run()
        frags = vm.static_rt._devirt_frags
        assert frags  # gcc_like devirtualizes at least one site
        pc = next(iter(frags))
        frags[pc] = tombstone(frags[pc])
        found = collect_violations(vm)
        assert any(v.site == "static-devirt" for v in found)


class TestConfigSurface:
    def test_label_and_fingerprint_reflect_static(self):
        base = SDTConfig(profile=SIMPLE, ib="ibtc")
        static = SDTConfig(profile=SIMPLE, ib="ibtc", static_targets=True)
        assert static.label.endswith("+static")
        assert base.fingerprint() != static.fingerprint()

    def test_off_by_default_and_no_runtime_bound(self):
        program = get_workload("gzip_like", "tiny").compile()
        vm = SDTVM(program, config=SDTConfig(profile=SIMPLE))
        assert vm.static_rt is None
        result = vm.run()
        assert result.stats.static == {}


class TestTraceEvents:
    def test_static_events_emitted_inside_dispatch(self):
        from repro.trace.spec import TraceSpec

        program = get_workload("perl_like", "tiny").compile()
        config = SDTConfig(profile=SIMPLE, ib="ibtc", static_targets=True,
                           trace=TraceSpec(ring=65536))
        vm = SDTVM(program, config=config)
        vm.run()
        kinds = {kind for _seq, _cyc, kind, _data in vm.trace.events}
        assert "static.preseed" in kinds
        assert "static.devirt" in kinds
