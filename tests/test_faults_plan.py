"""Fault plans: validation, parsing, profiles, canonical round-trips."""

import dataclasses

import pytest

from repro.faults.plan import (
    DEFAULT_SEED,
    ENV_VAR,
    PROFILES,
    RATE_FIELDS,
    FaultPlan,
    default_fault_plan,
    parse_fault_plan,
)


class TestValidation:
    def test_default_plan_is_inactive(self):
        plan = FaultPlan()
        assert not plan.active

    def test_any_positive_rate_activates(self):
        for name in RATE_FIELDS:
            assert FaultPlan(**{name: 0.5}).active, name

    @pytest.mark.parametrize("name", RATE_FIELDS)
    def test_rates_bounded(self, name):
        with pytest.raises(ValueError):
            FaultPlan(**{name: 1.5})
        with pytest.raises(ValueError):
            FaultPlan(**{name: -0.1})

    def test_table_rates_share_one_draw(self):
        with pytest.raises(ValueError):
            FaultPlan(table_drop=0.7, table_corrupt=0.7)
        FaultPlan(table_drop=0.5, table_corrupt=0.5)  # boundary is fine

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            FaultPlan().seed = 7


class TestFingerprint:
    def test_covers_every_declared_field(self):
        names = [name for name, _ in FaultPlan().fingerprint()]
        assert names == [f.name for f in dataclasses.fields(FaultPlan)]

    def test_distinct_plans_distinct(self):
        a = FaultPlan(seed=1, flush_storm=0.1)
        b = FaultPlan(seed=2, flush_storm=0.1)
        c = FaultPlan(seed=1, flush_storm=0.2)
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3


class TestParse:
    @pytest.mark.parametrize("spec", ["", "off", "none", "0", "  OFF  "])
    def test_off_words(self, spec):
        assert parse_fault_plan(spec) is None

    def test_none_and_plan_pass_through(self):
        assert parse_fault_plan(None) is None
        plan = FaultPlan(flush_storm=0.5)
        assert parse_fault_plan(plan) is plan

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_profiles(self, name):
        plan = parse_fault_plan(name)
        assert plan == FaultPlan(seed=DEFAULT_SEED, **PROFILES[name])
        assert plan.active

    def test_profile_with_seed(self):
        plan = parse_fault_plan("chaos:99")
        assert plan.seed == 99
        assert plan.flush_storm == PROFILES["chaos"]["flush_storm"]

    def test_kv_list(self):
        plan = parse_fault_plan("seed=7, flush_storm=0.5, table_drop=0.25")
        assert plan == FaultPlan(seed=7, flush_storm=0.5, table_drop=0.25)

    def test_inactive_kv_list_is_none(self):
        assert parse_fault_plan("seed=7") is None

    @pytest.mark.parametrize("spec", [
        "warp", "chaos:xyz", "flush_storm", "flush_storm=lots", "bogus=1",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_fault_plan(spec)


class TestDescribe:
    def test_profile_round_trip(self):
        for name in PROFILES:
            plan = parse_fault_plan(f"{name}:77")
            assert plan.describe() == f"{name}:77"
            assert parse_fault_plan(plan.describe()) == plan

    def test_custom_round_trip(self):
        plan = FaultPlan(seed=5, translate_fail=0.125)
        assert parse_fault_plan(plan.describe()) == plan


class TestEnvDefault:
    def test_unset_means_no_injection(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert default_fault_plan() is None

    def test_env_reaches_config_default(self, monkeypatch):
        from repro.host.profile import SIMPLE
        from repro.sdt.config import SDTConfig

        monkeypatch.setenv(ENV_VAR, "storm:42")
        config = SDTConfig(profile=SIMPLE)
        assert config.faults == FaultPlan(seed=42, **PROFILES["storm"])

    def test_config_parses_spec_strings(self, monkeypatch):
        from repro.host.profile import SIMPLE
        from repro.sdt.config import SDTConfig

        monkeypatch.delenv(ENV_VAR, raising=False)
        config = SDTConfig(profile=SIMPLE, faults="light")
        assert config.faults == FaultPlan(seed=DEFAULT_SEED,
                                          **PROFILES["light"])
        assert SDTConfig(profile=SIMPLE, faults="off").faults is None

    def test_config_rejects_junk(self, monkeypatch):
        from repro.host.profile import SIMPLE
        from repro.sdt.config import SDTConfig

        monkeypatch.delenv(ENV_VAR, raising=False)
        with pytest.raises(ValueError):
            SDTConfig(profile=SIMPLE, faults="not-a-plan")
        with pytest.raises(ValueError):
            SDTConfig(profile=SIMPLE, faults=3.14)
