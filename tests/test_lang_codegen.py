"""MiniC code generation: behavioural tests (compile, run, check output)."""


from conftest import run_minic


def out(source: str, inputs=None) -> str:
    return run_minic(source, inputs=inputs).output


def main_out(body: str, inputs=None) -> str:
    return out("int main() { " + body + " }", inputs=inputs)


class TestArithmetic:
    def test_literals_and_ops(self):
        assert main_out("print_int(2 + 3 * 4);") == "14"
        assert main_out("print_int((2 + 3) * 4);") == "20"
        assert main_out("print_int(10 - 4 - 3);") == "3"
        assert main_out("print_int(7 / 2);") == "3"
        assert main_out("print_int(-7 / 2);") == "-3"
        assert main_out("print_int(7 % 3);") == "1"
        assert main_out("print_int(-7 % 3);") == "-1"

    def test_bitwise(self):
        assert main_out("print_int(12 & 10);") == "8"
        assert main_out("print_int(12 | 10);") == "14"
        assert main_out("print_int(12 ^ 10);") == "6"
        assert main_out("print_int(~0);") == "-1"
        assert main_out("print_int(1 << 5);") == "32"
        assert main_out("print_int(-32 >> 2);") == "-8"
        assert main_out("print_int(-1 >>> 28);") == "15"

    def test_unary(self):
        assert main_out("int x = 5; print_int(-x);") == "-5"
        assert main_out("print_int(!0); print_int(!7);") == "10"

    def test_overflow_wraps(self):
        assert main_out(
            "int x = 0x7fffffff; print_int(x + 1);"
        ) == "-2147483648"

    def test_comparisons(self):
        assert main_out("print_int(3 < 4); print_int(4 < 3);") == "10"
        assert main_out("print_int(3 <= 3); print_int(4 <= 3);") == "10"
        assert main_out("print_int(4 > 3); print_int(3 > 4);") == "10"
        assert main_out("print_int(3 >= 4);") == "0"
        assert main_out("print_int(3 == 3); print_int(3 != 3);") == "10"
        assert main_out("print_int(-1 < 1);") == "1"  # signed compare

    def test_deep_expression_spills(self):
        # forces the register stack past t0..t7
        expr = "1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 + (9 + (10 + 11)))))))))"
        assert main_out(f"print_int({expr});") == "66"

    def test_wide_expression(self):
        terms = " + ".join(str(i) for i in range(1, 21))
        assert main_out(f"print_int({terms});") == "210"


class TestLogicalOperators:
    def test_values(self):
        assert main_out("print_int(1 && 2);") == "1"
        assert main_out("print_int(0 && 1);") == "0"
        assert main_out("print_int(0 || 3);") == "1"
        assert main_out("print_int(0 || 0);") == "0"

    def test_short_circuit_and(self):
        source = """
        int calls = 0;
        int touch() { calls++; return 1; }
        int main() {
            int r = 0 && touch();
            print_int(calls);
            r = 1 && touch();
            print_int(calls);
            return 0;
        }
        """
        assert out(source) == "01"

    def test_short_circuit_or(self):
        source = """
        int calls = 0;
        int touch() { calls++; return 0; }
        int main() {
            int r = 1 || touch();
            print_int(calls);
            r = 0 || touch();
            print_int(calls);
            return 0;
        }
        """
        assert out(source) == "01"

    def test_ternary(self):
        assert main_out("int x = 5; print_int(x > 3 ? 10 : 20);") == "10"
        assert main_out("int x = 1; print_int(x > 3 ? 10 : 20);") == "20"
        assert main_out("print_int(1 ? 0 ? 1 : 2 : 3);") == "2"


class TestVariablesAndScopes:
    def test_init_and_assign(self):
        assert main_out("int x = 3; x = x + 1; print_int(x);") == "4"

    def test_compound_assignments(self):
        assert main_out(
            "int x = 10; x += 5; x -= 3; x *= 2; x /= 4; x %= 4; print_int(x);"
        ) == "2"
        assert main_out(
            "int x = 12; x &= 10; x |= 1; x ^= 2; print_int(x);"
        ) == "11"
        assert main_out("int x = 3; x <<= 2; x >>= 1; print_int(x);") == "6"

    def test_increments(self):
        assert main_out("int i = 5; i++; i++; i--; print_int(i);") == "6"

    def test_shadowing(self):
        assert main_out(
            "int x = 1; { int x = 2; print_int(x); } print_int(x);"
        ) == "21"

    def test_globals(self):
        assert out(
            "int g = 7; int bump() { g += 1; return g; }"
            "int main() { bump(); bump(); print_int(g); return 0; }"
        ) == "9"

    def test_uninitialised_global_is_zero(self):
        assert out("int g; int main() { print_int(g); return 0; }") == "0"

    def test_register_vars(self):
        assert main_out(
            "register int a = 2; register int b = 3; print_int(a * b);"
        ) == "6"

    def test_register_vars_survive_calls(self):
        source = """
        int clobber() { int t = 99; return t; }
        int main() {
            register int keep = 42;
            clobber();
            print_int(keep);
            return 0;
        }
        """
        assert out(source) == "42"

    def test_more_register_vars_than_sregs(self):
        decls = "".join(f"register int r{i} = {i};" for i in range(9))
        total = "+".join(f"r{i}" for i in range(9))
        assert main_out(decls + f"print_int({total});") == "36"


class TestArrays:
    def test_local_array(self):
        assert main_out(
            "int a[3]; a[0] = 5; a[1] = 6; a[2] = 7;"
            "print_int(a[0] + a[1] + a[2]);"
        ) == "18"

    def test_global_array_with_init(self):
        assert out(
            "int a[] = { 10, 20, 30 };"
            "int main() { print_int(a[1]); return 0; }"
        ) == "20"

    def test_global_array_partial_init_zero_filled(self):
        assert out(
            "int a[4] = { 1 };"
            "int main() { print_int(a[0] + a[3]); return 0; }"
        ) == "1"

    def test_computed_index(self):
        assert main_out(
            "int a[4]; int i; for (i = 0; i < 4; i++) a[i] = i * i;"
            "print_int(a[3]);"
        ) == "9"

    def test_compound_assign_element(self):
        assert main_out("int a[2]; a[1] = 3; a[1] += 4; print_int(a[1]);") == "7"

    def test_array_passed_as_pointer(self):
        source = """
        int sum(int p, int n) {
            int total = 0;
            int i;
            for (i = 0; i < n; i++) total += p[i];
            return total;
        }
        int main() {
            int a[4];
            a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
            print_int(sum(a, 4));
            return 0;
        }
        """
        assert out(source) == "10"

    def test_address_of_local_scalar(self):
        assert main_out(
            "int x = 5; int p = &x; store(p, 9); print_int(x);"
        ) == "9"


class TestControlFlow:
    def test_if_chain(self):
        source = """
        int grade(int score) {
            if (score >= 90) return 4;
            else if (score >= 80) return 3;
            else if (score >= 70) return 2;
            else return 0;
        }
        int main() {
            print_int(grade(95)); print_int(grade(85));
            print_int(grade(75)); print_int(grade(50));
            return 0;
        }
        """
        assert out(source) == "4320"

    def test_while_and_break_continue(self):
        assert main_out(
            "int i = 0; int s = 0;"
            "while (1) { i++; if (i > 10) break;"
            "if (i % 2) continue; s += i; } print_int(s);"
        ) == "30"

    def test_do_while_runs_once(self):
        assert main_out("int i = 9; do { i++; } while (i < 5); print_int(i);") == "10"

    def test_for_with_decl(self):
        assert main_out(
            "int s = 0; for (int i = 1; i <= 4; i++) s += i; print_int(s);"
        ) == "10"

    def test_nested_loops_break_inner_only(self):
        assert main_out(
            "int c = 0; int i; int j;"
            "for (i = 0; i < 3; i++) for (j = 0; j < 5; j++)"
            "{ if (j == 2) break; c++; } print_int(c);"
        ) == "6"

    def test_continue_in_for_runs_step(self):
        assert main_out(
            "int c = 0; int i;"
            "for (i = 0; i < 10; i++) { if (i & 1) continue; c++; }"
            "print_int(c);"
        ) == "5"


class TestSwitch:
    DENSE = """
    int pick(int x) {
        switch (x) {
        case 0: return 10;
        case 1: return 11;
        case 2: return 12;
        case 3: return 13;
        case 4: return 14;
        default: return -1;
        }
    }
    int main() {
        int i;
        for (i = -1; i < 6; i++) { print_int(pick(i)); print_char(' '); }
        return 0;
    }
    """

    def test_dense_switch_lowered_to_jump_table(self):
        from repro.lang import compile_source

        assembly = compile_source(self.DENSE)
        assert "jr   t8" in assembly  # jump table dispatch

    def test_dense_switch_semantics(self):
        assert out(self.DENSE) == "-1 10 11 12 13 14 -1 "

    def test_sparse_switch_compare_chain(self):
        from repro.lang import compile_source

        source = """
        int pick(int x) {
            switch (x) {
            case 1: return 1;
            case 100: return 2;
            case 10000: return 3;
            default: return 0;
            }
        }
        int main() {
            print_int(pick(1)); print_int(pick(100));
            print_int(pick(10000)); print_int(pick(5));
            return 0;
        }
        """
        assert "jr   t8" not in compile_source(source)
        assert out(source) == "1230"

    def test_fallthrough(self):
        assert main_out(
            "int r = 0;"
            "switch (2) { case 1: r += 1; case 2: r += 2; case 3: r += 4;"
            "break; case 4: r += 8; } print_int(r);"
        ) == "6"

    def test_no_default_falls_out(self):
        assert main_out(
            "int r = 5; switch (99) { case 1: r = 1; } print_int(r);"
        ) == "5"

    def test_negative_selector_range(self):
        assert main_out(
            "int r; switch (-2) { case -3: r = 1; break; case -2: r = 2;"
            "break; case -1: r = 3; break; case 0: r = 4; break;"
            "default: r = 0; } print_int(r);"
        ) == "2"


class TestFunctions:
    def test_multiple_args(self):
        assert out(
            "int f(int a, int b, int c, int d) { return a*1000 + b*100 + c*10 + d; }"
            "int main() { print_int(f(1, 2, 3, 4)); return 0; }"
        ) == "1234"

    def test_more_than_four_args_via_stack(self):
        assert out(
            "int f(int a, int b, int c, int d, int e, int g, int h, int i)"
            "{ return a + b + c + d + e + g + h + i; }"
            "int main() { print_int(f(1, 2, 3, 4, 5, 6, 7, 8)); return 0; }"
        ) == "36"

    def test_stack_param_is_writable(self):
        assert out(
            "int f(int a, int b, int c, int d, int e) { e += 1; return e; }"
            "int main() { print_int(f(0, 0, 0, 0, 9)); return 0; }"
        ) == "10"

    def test_recursion(self):
        assert out(
            "int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }"
            "int main() { print_int(fact(7)); return 0; }"
        ) == "5040"

    def test_mutual_recursion(self):
        assert out(
            "int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }"
            "int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }"
            "int main() { print_int(is_even(10)); print_int(is_even(7)); return 0; }"
        ) == "10"

    def test_nested_calls_preserve_temps(self):
        assert out(
            "int id(int x) { return x; }"
            "int main() { print_int(id(1) + id(2) * id(3)); return 0; }"
        ) == "7"

    def test_call_as_argument(self):
        assert out(
            "int sq(int x) { return x * x; }"
            "int main() { print_int(sq(sq(3))); return 0; }"
        ) == "81"

    def test_missing_return_yields_zero(self):
        assert out(
            "int f() { int x = 5; x = x; }"
            "int main() { print_int(f()); return 0; }"
        ) == "0"

    def test_main_return_is_exit_code(self):
        result = run_minic("int main() { return 17; }")
        assert result.exit_code == 17


class TestIndirectCalls:
    def test_via_variable(self):
        assert out(
            "int inc(int x) { return x + 1; }"
            "int main() { int f = &inc; print_int(f(41)); return 0; }"
        ) == "42"

    def test_via_table_element(self):
        assert out(
            "int a(int x) { return x + 1; }"
            "int b(int x) { return x * 2; }"
            "int t[] = { &a, &b };"
            "int main() { print_int(t[0](10)); print_int(t[1](10)); return 0; }"
        ) == "1120"

    def test_function_name_as_value(self):
        assert out(
            "int f(int x) { return x; }"
            "int main() { int p = f; print_int(p(5)); return 0; }"
        ) == "5"

    def test_returned_function_pointer(self):
        assert out(
            "int dbl(int x) { return 2 * x; }"
            "int get() { return &dbl; }"
            "int main() { print_int(get()(21)); return 0; }"
        ) == "42"


class TestBuiltins:
    def test_print_family(self):
        assert main_out(
            'print_int(1); print_char(\'-\'); print_str("two");'
        ) == "1-two"

    def test_read_int(self):
        assert main_out(
            "print_int(read_int() + read_int());", inputs=[20, 22]
        ) == "42"

    def test_exit_stops_immediately(self):
        result = run_minic("int main() { exit(5); print_int(1); return 0; }")
        assert result.exit_code == 5
        assert result.output == ""

    def test_sbrk_load_store(self):
        assert main_out(
            "int p = sbrk(8); store(p, 11); store(p + 4, 31);"
            "print_int(load(p) + load(p + 4));"
        ) == "42"

    def test_string_escapes(self):
        assert main_out(r'print_str("a\tb\n");') == "a\tb\n"

    def test_string_deduplication(self):
        from repro.lang import compile_source

        assembly = compile_source(
            'int main() { print_str("same"); print_str("same"); return 0; }'
        )
        assert assembly.count('.asciiz "same"') == 1


class TestDataLayout:
    def test_globals_realigned_after_odd_strings(self):
        """Regression: an odd-length string before an uninitialised global
        array must not leave the array word-misaligned."""
        source = """
        int table[4];
        int main() {
            print_str("odd");        /* 4 bytes with NUL... use 3+1 */
            print_str("x");          /* 2 bytes: forces odd offset  */
            table[0] = 7;
            table[3] = 9;
            print_int(table[0] + table[3]);
            return 0;
        }
        """
        assert out(source) == "oddx16"

    def test_scalar_after_string(self):
        source = """
        int g;
        int main() { print_str("ab!"); g = 5; print_int(g); return 0; }
        """
        assert out(source) == "ab!5"
