"""Program image model and the loader."""

from repro.isa.assembler import assemble
from repro.isa.program import (
    DATA_BASE,
    Program,
    STACK_TOP,
    Section,
    TEXT_BASE,
)
from repro.isa.registers import REG_SP
from repro.machine.loader import load_program


class TestSection:
    def test_end(self):
        section = Section("text", 0x1000, b"\0" * 12)
        assert section.end == 0x100C


class TestProgram:
    def _program(self, data: bytes = b"") -> Program:
        return Program(
            text=Section("text", TEXT_BASE, b"\0" * 8),
            data=Section("data", DATA_BASE, data),
            entry=TEXT_BASE,
        )

    def test_heap_base_empty_data(self):
        assert self._program().heap_base == DATA_BASE

    def test_heap_base_aligned_past_data(self):
        program = self._program(b"\0" * 13)
        assert program.heap_base == DATA_BASE + 16
        assert program.heap_base % 16 == 0

    def test_text_words_little_endian(self):
        program = Program(
            text=Section("text", TEXT_BASE, bytes([1, 0, 0, 0, 2, 0, 0, 0])),
            data=Section("data", DATA_BASE, b""),
            entry=TEXT_BASE,
        )
        assert program.text_words() == [1, 2]

    def test_symbol_lookup(self):
        program = assemble(".text\nmain:\nnop\nother:\nnop\n")
        assert program.symbol("other") == TEXT_BASE + 4


class TestLoader:
    def test_sections_loaded(self):
        program = assemble(
            '.text\nmain:\nnop\n.data\nmsg: .asciiz "ok"\n'
        )
        cpu, mem, syscalls = load_program(program)
        assert mem.load_word(TEXT_BASE) == program.text_words()[0]
        assert mem.read_cstring(program.symbol("msg")) == "ok"

    def test_initial_cpu_state(self):
        program = assemble(".text\nmain:\nnop\n")
        cpu, mem, syscalls = load_program(program)
        assert cpu.pc == program.entry
        assert cpu.read(REG_SP) == STACK_TOP

    def test_heap_base_reaches_syscalls(self):
        program = assemble(".text\nmain:\nnop\n.data\nx: .space 40\n")
        _, _, syscalls = load_program(program)
        assert syscalls.brk == program.heap_base

    def test_inputs_passed_through(self):
        program = assemble(".text\nmain:\nnop\n")
        _, _, syscalls = load_program(program, inputs=[7, 8])
        assert syscalls._inputs == [7, 8]
