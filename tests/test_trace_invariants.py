"""Whole-system tracing invariants.

Three properties the observability layer guarantees (docs/observability.md):

1. **Exact attribution** — per-phase cycle totals telescope to the run's
   total cycles, for every workload × mechanism and both engines.
2. **Determinism** — two identical traced runs export byte-identical
   Chrome-trace and metrics JSON (timestamps are simulated cycles, never
   wall clock).
3. **Pure observation** — tracing changes nothing: a traced run's
   architectural results, cycle totals and stats are identical to the
   same run untraced, which is what justifies the ``trace`` field's
   fingerprint exemption.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.host.profile import SIMPLE
from repro.sdt.config import GENERIC_MECHANISMS, RETURN_SCHEMES, SDTConfig
from repro.sdt.vm import SDTVM
from repro.trace.export import chrome_trace_json, metrics_json
from repro.trace.runtrace import trace_run
from repro.trace.spec import TraceSpec
from repro.workloads import get_workload, workload_names

pytestmark = pytest.mark.usefixtures("no_faults")


def _attribution_exact(workload: str, config: SDTConfig, scale: str) -> None:
    traced = trace_run(workload, config, scale=scale)
    attributed = traced.session.total_attributed()
    assert attributed == traced.result.total_cycles, (
        f"{workload}/{config.label}: attributed {attributed} != "
        f"total {traced.result.total_cycles} "
        f"(phases: {traced.session.attribution()})"
    )


class TestExactAttribution:
    @pytest.mark.parametrize("workload", workload_names())
    @pytest.mark.parametrize("mechanism", GENERIC_MECHANISMS)
    def test_workload_x_mechanism(self, workload, mechanism):
        config = SDTConfig(profile=SIMPLE, ib=mechanism)
        _attribution_exact(workload, config, "small")

    @pytest.mark.parametrize("returns", RETURN_SCHEMES)
    def test_return_schemes(self, returns):
        config = SDTConfig(profile=SIMPLE, ib="ibtc", returns=returns)
        _attribution_exact("perl_like", config, "tiny")

    @pytest.mark.parametrize("engine", ("oracle", "threaded"))
    def test_both_engines(self, engine):
        config = SDTConfig(profile=SIMPLE, ib="sieve", returns="shadow",
                           engine=engine)
        _attribution_exact("gcc_like", config, "tiny")

    def test_with_inline_prediction(self):
        config = SDTConfig(profile=SIMPLE, ib="ibtc", inline_predict=True)
        _attribution_exact("crafty_like", config, "tiny")

    def test_under_fault_injection(self):
        # faults move cycles between phases but the telescoping sum still
        # closes; run.end lands after the final (possibly faulted) cycle
        config = SDTConfig(profile=SIMPLE, ib="ibtc", faults="chaos:99",
                           fragment_cache_bytes=4096)
        _attribution_exact("gap_like", config, "tiny")


class TestDeterminism:
    @pytest.mark.parametrize("mechanism", GENERIC_MECHANISMS)
    def test_traced_exports_byte_identical(self, mechanism):
        config = SDTConfig(profile=SIMPLE, ib=mechanism, returns="fast")
        first = trace_run("vortex_like", config, scale="tiny")
        second = trace_run("vortex_like", config, scale="tiny")
        assert chrome_trace_json(first.session) == \
            chrome_trace_json(second.session)
        assert metrics_json(first.session, first.result, first.context) == \
            metrics_json(second.session, second.result, second.context)

    def test_cross_engine_event_streams_match(self):
        # the emit sites are all architectural events, so the two engines
        # must produce the same event sequence (timestamps included)
        config = SDTConfig(profile=SIMPLE, ib="ibtc")
        runs = {
            engine: trace_run(
                "twolf_like",
                dataclasses.replace(config, engine=engine),
                scale="tiny",
            )
            for engine in ("oracle", "threaded")
        }
        oracle, threaded = runs["oracle"], runs["threaded"]
        # plan.build only exists under the threaded engine; everything
        # else — order, kinds, payloads, cycle stamps — must agree
        strip = lambda session: [  # noqa: E731 - local one-liner
            (cycles, kind, data)
            for _seq, cycles, kind, data in session.events
            if kind != "plan.build"
        ]
        assert strip(oracle.session) == strip(threaded.session)
        assert oracle.session.phase_cycles == threaded.session.phase_cycles


class TestPureObservation:
    def _run(self, config: SDTConfig):
        workload = get_workload("parser_like", "tiny")
        vm = SDTVM(workload.compile(), config=config)
        return vm.run()

    def test_traced_equals_untraced(self):
        off = self._run(SDTConfig(profile=SIMPLE, ib="sieve",
                                  returns="retcache", trace=None))
        on = self._run(SDTConfig(profile=SIMPLE, ib="sieve",
                                 returns="retcache", trace=TraceSpec()))
        assert on.output == off.output
        assert on.exit_code == off.exit_code
        assert on.retired == off.retired
        assert on.iclass_counts == off.iclass_counts
        assert on.total_cycles == off.total_cycles
        assert on.cycles == off.cycles
        assert on.stats.as_dict() == off.stats.as_dict()

    def test_trace_is_fingerprint_exempt(self):
        base = SDTConfig(profile=SIMPLE, trace=None)
        traced = SDTConfig(profile=SIMPLE, trace=TraceSpec(ring=7))
        assert base.fingerprint() == traced.fingerprint()
        assert base.label == traced.label

    def test_untraced_vm_has_no_session(self):
        workload = get_workload("gzip_like", "tiny")
        vm = SDTVM(workload.compile(),
                   config=SDTConfig(profile=SIMPLE, trace=None))
        assert vm.trace is None
        assert vm.cache.trace is None
        assert vm.translator.trace is None
