"""Experiment drivers: structure and the paper's qualitative shapes.

These run at tiny scale; the assertions are the *reproduction criteria*
from EXPERIMENTS.md — orderings and crossovers, never absolute numbers.
"""

import pytest

from repro.eval.experiments import (
    ALL_EXPERIMENTS,
    e1_ib_characteristics,
    e2_baseline_overhead,
    e3_ibtc_sweep,
    e6_mechanism_comparison,
    e7_return_handling,
    e9_ibtc_hitrate,
)
from repro.workloads import workload_names

SCALE = "tiny"


@pytest.fixture(scope="module", autouse=True)
def _module_no_faults():
    """Paper-shape assertions (orderings, hit rates) are clean-spec."""
    with pytest.MonkeyPatch.context() as mp:
        mp.delenv("REPRO_FAULTS", raising=False)
        yield


@pytest.fixture(scope="module", autouse=True)
def _isolated_results(tmp_path_factory):
    """Keep test artefacts out of the benchmark-owned results/ dir."""
    import repro.eval.report as report

    original = report.RESULTS_DIR
    report.RESULTS_DIR = tmp_path_factory.mktemp("results")
    yield
    report.RESULTS_DIR = original


def column(rows, index):
    return [row[index] for row in rows]


@pytest.fixture(scope="module")
def e1():
    return e1_ib_characteristics(SCALE)


@pytest.fixture(scope="module")
def e2():
    return e2_baseline_overhead(SCALE)


@pytest.fixture(scope="module")
def e3():
    return e3_ibtc_sweep(SCALE)


@pytest.fixture(scope="module")
def e6():
    return e6_mechanism_comparison(SCALE)


@pytest.fixture(scope="module")
def e7():
    return e7_return_handling(SCALE)


@pytest.fixture(scope="module")
def e9():
    return e9_ibtc_hitrate(SCALE)


class TestE1:
    def test_one_row_per_workload(self, e1):
        headers, rows = e1
        assert column(rows, 0) == workload_names()

    def test_ib_total_consistent(self, e1):
        headers, rows = e1
        for row in rows:
            assert row[5] == row[2] + row[3] + row[4]

    def test_rates_span_suite(self, e1):
        headers, rows = e1
        rates = column(rows, 6)
        assert max(rates) / min(rates) > 4


class TestE2:
    def test_baseline_overhead_substantial(self, e2):
        headers, rows = e2
        geomean_row = rows[-1]
        assert geomean_row[0] == "geomean"
        assert geomean_row[1] > 1.5  # unoptimised SDT is clearly slow

    def test_nolink_strictly_worse(self, e2):
        headers, rows = e2
        for row in rows:
            assert row[2] > row[1]

    def test_low_ib_benchmarks_have_low_overhead(self, e2, e1):
        _, e2_rows = e2
        _, e1_rows = e1
        overhead = {row[0]: row[1] for row in e2_rows[:-1]}
        instrs_per_ib = {row[0]: row[6] for row in e1_rows}
        # the benchmark with the fewest IBs must not have the highest
        # overhead; the one with the most must not have the lowest
        rarest = max(instrs_per_ib, key=instrs_per_ib.get)
        densest = min(instrs_per_ib, key=instrs_per_ib.get)
        assert overhead[rarest] < max(overhead.values())
        assert overhead[densest] > min(overhead.values())


class TestE3:
    def test_monotone_improvement_with_size_geomean(self, e3):
        headers, rows = e3
        geo = rows[-1][1:]
        # non-strict: once past the knee the curve flattens
        assert all(later <= earlier + 0.01
                   for earlier, later in zip(geo, geo[1:]))

    def test_diminishing_returns(self, e3):
        headers, rows = e3
        geo = rows[-1][1:]
        first_gain = geo[0] - geo[1]
        last_gain = geo[-2] - geo[-1]
        assert first_gain >= last_gain


class TestE6:
    def test_tuned_mechanisms_beat_baseline_everywhere(self, e6):
        headers, rows = e6
        reentry = headers.index("reentry")
        for row in rows:
            for col in range(1, len(headers)):
                if col != reentry:
                    assert row[col] < row[reentry], row

    def test_fast_returns_best_geomean(self, e6):
        headers, rows = e6
        geo = rows[-1]
        fast = geo[headers.index("ibtc+fastret")]
        assert fast == min(geo[1:])


class TestE7:
    def test_fast_returns_win_geomean(self, e7):
        headers, rows = e7
        geo = rows[-1]
        assert geo[headers.index("ret=fast")] == min(geo[1:])

    def test_shadow_no_worse_than_generic(self, e7):
        headers, rows = e7
        geo = rows[-1]
        assert geo[headers.index("ret=shadow")] <= \
            geo[headers.index("ret=same")] + 0.01


class TestE9:
    def test_hit_rate_monotone_in_size(self, e9):
        headers, rows = e9
        for row in rows:
            rates = row[1:]
            assert all(later >= earlier - 0.02
                       for earlier, later in zip(rates, rates[1:])), row

    def test_large_tables_hit_well(self, e9):
        headers, rows = e9
        for row in rows:
            assert row[-1] > 0.8, row


def test_registry_complete():
    assert set(ALL_EXPERIMENTS) == {f"e{i}" for i in range(1, 16)}
