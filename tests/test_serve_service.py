"""In-process service tests: admission, coalescing, caching, breaker
integration, deadlines, drain/replay, and metrics.

The heavier lifecycle scenarios (SIGTERM against a live daemon process,
kill-and-replay byte-identity) live in ``test_serve_daemon.py``; here
the service core runs inside the test's own event loop, with the
executor monkeypatched where determinism needs it.
"""

import asyncio
import threading

import pytest

import repro.serve.service as service_mod
from repro.eval.parallel import CellFailure, ExecutionReport, execute_cells
from repro.serve.service import ExperimentService, ServeSettings

pytestmark = pytest.mark.usefixtures("no_faults")

MEASURE = {"kind": "measure", "workload": "gzip_like", "scale": "tiny",
           "config": {"ib": "ibtc"}, "fuel": 3_000_000}
NATIVE = {"kind": "native", "workload": "gzip_like", "scale": "tiny",
          "fuel": 3_000_000}


def run(coro):
    return asyncio.run(coro)


def settings(tmp_path, **overrides):
    defaults = dict(state_dir=tmp_path / "state",
                    cache_dir=tmp_path / "cache",
                    jobs=2, timeout=30.0, queue_depth=8,
                    drain_timeout=5.0)
    defaults.update(overrides)
    return ServeSettings(**defaults)


class FakeExecutor:
    """Deterministic stand-in for execute_cells (injectable via
    monkeypatching the name imported into the service module)."""

    def __init__(self, mode="ok", block=None):
        self.mode = mode
        self.block = block       # threading.Event: wait before returning
        self.calls = 0

    def __call__(self, cells, **kwargs):
        self.calls += 1
        if self.block is not None:
            self.block.wait(timeout=10)
        report = ExecutionReport(requested=len(cells), unique=len(cells))
        results = {}
        for cell in cells:
            if self.mode == "ok":
                results[cell.key()] = _fake_result(cell)
                report.computed += 1
            else:
                report.failures[cell.key()] = CellFailure(
                    key=cell.key(), label=cell.label, kind=self.mode,
                    attempts=1, error=f"fake {self.mode}")
        report.cell_seconds = {key: 0.001 for key in results}
        return results, report


def _fake_result(cell):
    # a real Measurement-shaped object is not needed: the service treats
    # results opaquely; encode_result is bypassed with a stub
    return {"fake": cell.key()}


@pytest.fixture
def fake_encode(monkeypatch):
    monkeypatch.setattr(service_mod, "encode_result", lambda r: r)


class TestComputeAndCache:
    def test_compute_then_memory_then_disk(self, tmp_path):
        async def scenario():
            svc = ExperimentService(settings(tmp_path))
            await svc.start()
            first = await svc.submit(MEASURE)
            second = await svc.submit(MEASURE)
            await svc.drain()
            return first, second

        first, second = run(scenario())
        assert (first.status, first.body["source"]) == (200, "computed")
        assert (second.status, second.body["source"]) == (200,
                                                          "cache-memory")
        assert first.body["result"] == second.body["result"]

        async def fresh():
            svc = ExperimentService(settings(tmp_path))
            await svc.start()
            response = await svc.submit(MEASURE)
            await svc.drain()
            return response

        third = run(fresh())   # fresh LRU, same disk cache
        assert (third.status, third.body["source"]) == (200, "cache-disk")
        assert third.body["result"] == first.body["result"]

    def test_coalescing_single_execution(self, tmp_path, monkeypatch,
                                         fake_encode):
        executor = FakeExecutor()
        monkeypatch.setattr(service_mod, "execute_cells", executor)

        async def scenario():
            svc = ExperimentService(settings(tmp_path))
            await svc.start()
            responses = await asyncio.gather(*[
                svc.submit(NATIVE) for _ in range(4)
            ])
            await svc.drain()
            return responses

        responses = run(scenario())
        assert executor.calls == 1
        sources = sorted(r.body["source"] for r in responses)
        assert sources == ["coalesced"] * 3 + ["computed"]
        assert len({str(r.body["result"]) for r in responses}) == 1

    def test_submit_before_start_is_503(self, tmp_path):
        svc = ExperimentService(settings(tmp_path))
        response = run(svc.submit(MEASURE))
        assert response.status == 503


class TestAdmission:
    def test_queue_full_sheds_with_429(self, tmp_path, monkeypatch,
                                       fake_encode):
        gate = threading.Event()
        executor = FakeExecutor(block=gate)
        monkeypatch.setattr(service_mod, "execute_cells", executor)

        async def scenario():
            svc = ExperimentService(settings(
                tmp_path, jobs=1, queue_depth=1))
            await svc.start()
            payloads = [dict(NATIVE, fuel=1000 + n) for n in range(4)]
            # first entry: dispatched and parked in the blocked executor
            tasks = [asyncio.create_task(svc.submit(payloads[0]))]
            while not executor.calls:
                await asyncio.sleep(0.01)
            # second entry: fills the depth-1 queue
            tasks.append(asyncio.create_task(svc.submit(payloads[1])))
            await asyncio.sleep(0.05)
            # the rest hit the full-queue fast path and are shed
            tasks += [asyncio.create_task(svc.submit(p))
                      for p in payloads[2:]]
            await asyncio.sleep(0.05)
            gate.set()
            responses = await asyncio.gather(*tasks)
            metrics = svc.metrics_payload()
            await svc.drain()
            return responses, metrics

        responses, metrics = run(scenario())
        statuses = sorted(r.status for r in responses)
        assert statuses == [200, 200, 429, 429]
        shed = [r for r in responses if r.status == 429]
        assert all(r.headers.get("Retry-After") for r in shed)
        assert metrics["metrics"]["counters"]["serve.shed"] == 2

    def test_draining_rejects_new_work(self, tmp_path):
        async def scenario():
            svc = ExperimentService(settings(tmp_path))
            await svc.start()
            svc.begin_drain()
            response = await svc.submit(MEASURE)
            await svc.drain()
            return response

        response = run(scenario())
        assert response.status == 503
        assert "draining" in response.body["error"]


class TestBreakerIntegration:
    def test_failures_open_then_fast_fail_then_recover(
            self, tmp_path, monkeypatch, fake_encode):
        executor = FakeExecutor(mode="error")
        monkeypatch.setattr(service_mod, "execute_cells", executor)

        async def scenario():
            svc = ExperimentService(settings(
                tmp_path, breaker_threshold=2, breaker_base=0.05))
            await svc.start()
            errors = [await svc.submit(NATIVE) for _ in range(2)]
            rejected = await svc.submit(NATIVE)
            await asyncio.sleep(0.06)        # past the open interval
            executor.mode = "ok"             # the probe now succeeds
            probe = await svc.submit(NATIVE)
            healthy = await svc.submit(dict(NATIVE, fuel=999))
            snapshot = svc.metrics_payload()["breaker"]
            await svc.drain()
            return errors, rejected, probe, healthy, snapshot

        errors, rejected, probe, healthy, snapshot = run(scenario())
        assert [e.status for e in errors] == [500, 500]
        assert rejected.status == 503
        assert rejected.headers.get("Retry-After")
        assert "circuit open" in rejected.body["error"]
        assert probe.status == 200
        assert healthy.status == 200
        assert snapshot["open"] == []
        assert snapshot["transitions"] == 3  # closed→open→half→closed

    def test_timeout_failures_map_to_504(self, tmp_path, monkeypatch,
                                         fake_encode):
        executor = FakeExecutor(mode="timeout")
        monkeypatch.setattr(service_mod, "execute_cells", executor)

        async def scenario():
            svc = ExperimentService(settings(tmp_path))
            await svc.start()
            response = await svc.submit(NATIVE)
            await svc.drain()
            return response

        response = run(scenario())
        assert response.status == 504
        assert response.body["kind"] == "timeout"


class TestDeadlines:
    def test_deadline_exceeded_is_504(self, tmp_path, monkeypatch,
                                      fake_encode):
        gate = threading.Event()
        executor = FakeExecutor(block=gate)
        monkeypatch.setattr(service_mod, "execute_cells", executor)

        async def scenario():
            svc = ExperimentService(settings(tmp_path, drain_timeout=0.3))
            await svc.start()
            response = await svc.submit(dict(NATIVE, deadline=0.1))
            gate.set()
            await svc.drain()
            return response

        response = run(scenario())
        assert response.status == 504
        assert "deadline" in response.body["error"]

    def test_deadline_propagates_to_executor_watchdog(
            self, tmp_path, monkeypatch, fake_encode):
        seen = {}

        def recording_executor(cells, **kwargs):
            seen.update(kwargs)
            return FakeExecutor()(cells)

        monkeypatch.setattr(service_mod, "execute_cells",
                            recording_executor)

        async def scenario():
            svc = ExperimentService(settings(tmp_path, timeout=60.0))
            await svc.start()
            response = await svc.submit(dict(NATIVE, deadline=5.0))
            await svc.drain()
            return response

        response = run(scenario())
        assert response.status == 200
        assert seen["timeout"] is not None
        assert seen["timeout"] <= 5.0   # client deadline, not the 60s


class TestDrainAndReplay:
    def test_unfinished_work_is_journaled_and_replayed(
            self, tmp_path, monkeypatch, fake_encode):
        gate = threading.Event()
        blocked = FakeExecutor(block=gate)
        monkeypatch.setattr(service_mod, "execute_cells", blocked)

        async def interrupted():
            svc = ExperimentService(settings(
                tmp_path, jobs=1, drain_timeout=0.1))
            await svc.start()
            task = asyncio.create_task(svc.submit(NATIVE))
            while not blocked.calls:
                await asyncio.sleep(0.01)
            drained = await svc.drain()
            gate.set()
            response = await task
            return drained, response

        drained, response = run(interrupted())
        assert drained is False
        assert response.status == 503
        assert "journaled" in response.body["error"]

        fast = FakeExecutor()
        monkeypatch.setattr(service_mod, "execute_cells", fast)

        async def restarted():
            svc = ExperimentService(settings(tmp_path))
            replayed = await svc.start()
            while svc.metrics_payload()["queue"]["inflight"]:
                await asyncio.sleep(0.01)
            drained = await svc.drain()
            return replayed, drained

        replayed, drained = run(restarted())
        assert replayed == 1
        assert drained is True
        assert fast.calls == 1

        async def after():
            svc = ExperimentService(settings(tmp_path))
            replayed = await svc.start()
            await svc.drain()
            return replayed

        assert run(after()) == 0   # the journal compacted to empty


class TestMetrics:
    def test_payload_shape_and_determinism(self, tmp_path):
        async def scenario():
            svc = ExperimentService(settings(tmp_path))
            await svc.start()
            await svc.submit(MEASURE)
            await svc.submit(MEASURE)
            await svc.submit({"workload": "nope"})
            payload = svc.metrics_payload()
            await svc.drain()
            return payload

        payload = run(scenario())
        assert payload["ready"] is True
        assert payload["queue"]["capacity"] == 8
        assert payload["latency_ms"]["count"] == 3
        assert payload["latency_ms"]["p50"] <= payload["latency_ms"]["p99"]
        assert payload["cache"]["hit_rate"] == pytest.approx(0.5)
        counters = payload["metrics"]["counters"]
        assert counters["serve.requests"] == 3
        assert counters["serve.bad_requests"] == 1
        assert counters["serve.computed"] == 1
        assert counters["serve.cache_hits_memory"] == 1
        assert counters["serve.status.200"] == 2

    def test_zero_traffic_ratios_do_not_divide_by_zero(self, tmp_path):
        async def scenario():
            svc = ExperimentService(settings(tmp_path))
            await svc.start()
            payload = svc.metrics_payload()
            await svc.drain()
            return payload

        payload = run(scenario())
        assert payload["cache"]["hit_rate"] == 0.0
        assert payload["latency_ms"] == {
            "count": 0, "p50": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0,
        }


class TestEmptyPlanRegression:
    """Satellite: ratio properties must survive empty cell plans."""

    def test_execute_cells_empty_plan(self):
        results, report = execute_cells([])
        assert results == {}
        assert report.hit_rate == 0.0     # no ZeroDivisionError
        assert report.ok
        assert (report.requested, report.unique) == (0, 0)

    def test_empty_report_defaults(self):
        report = ExecutionReport()
        assert report.hit_rate == 0.0
        assert report.ok
