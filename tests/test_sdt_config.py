"""SDTConfig/ArchProfile canonical fingerprints (cache-key identity)."""

import dataclasses

import pytest

from repro.faults import FaultPlan
from repro.host.profile import SIMPLE, SPARC_US3, X86_K8, X86_P4
from repro.sdt.config import FINGERPRINT_EXEMPT, SDTConfig
from repro.trace.spec import TraceSpec

#: A valid alternate value per field, used to prove each field reaches the
#: fingerprint.  A new SDTConfig field must be added here (the coverage
#: test fails loudly otherwise) — which is exactly the point: it can no
#: longer be silently omitted from cache keys.  Fields in
#: FINGERPRINT_EXEMPT are covered the other way round: their alternate
#: must NOT change the fingerprint (engines produce identical results, so
#: engine choice must not split caches).
FIELD_ALTERNATES = {
    "profile": X86_K8,
    "ib": "sieve",
    "ibtc_entries": 999,
    "ibtc_shared": False,
    "ibtc_inline": False,
    "ibtc_hash": "shift",
    "inline_predict": True,
    "sieve_buckets": 77,
    "sieve_policy": "append",
    "returns": "fast",
    "shadow_depth": 5,
    "retcache_entries": 99,
    "linking": False,
    "trace_jumps": True,
    "static_targets": True,
    "fragment_cache_bytes": 12345,
    "max_fragment_instrs": 7,
    "coherence": "targeted",
    "engine": "oracle",
    "faults": FaultPlan(seed=31337, flush_storm=0.5),
    "trace": TraceSpec(ring=4096),
}


class TestConfigFingerprint:
    def test_every_declared_field_affects_the_fingerprint(self):
        base = SDTConfig(profile=SIMPLE, engine="threaded")
        for spec in dataclasses.fields(SDTConfig):
            assert spec.name in FIELD_ALTERNATES, (
                f"new config field {spec.name!r}: add an alternate value to "
                f"FIELD_ALTERNATES so fingerprint coverage is proven"
            )
            alternate = FIELD_ALTERNATES[spec.name]
            assert alternate != getattr(base, spec.name), spec.name
            variant = dataclasses.replace(base, **{spec.name: alternate})
            if spec.name in FINGERPRINT_EXEMPT:
                assert variant.fingerprint() == base.fingerprint(), (
                    f"exempt field {spec.name!r} must not affect "
                    f"SDTConfig.fingerprint() (it cannot change results)"
                )
            else:
                assert variant.fingerprint() != base.fingerprint(), (
                    f"field {spec.name!r} does not affect "
                    f"SDTConfig.fingerprint()"
                )

    def test_no_stale_alternates(self):
        declared = {spec.name for spec in dataclasses.fields(SDTConfig)}
        assert set(FIELD_ALTERNATES) == declared

    def test_exempt_fields_are_declared(self):
        declared = {spec.name for spec in dataclasses.fields(SDTConfig)}
        assert FINGERPRINT_EXEMPT <= declared

    def test_engine_does_not_reach_label(self):
        a = SDTConfig(profile=SIMPLE, engine="oracle")
        b = SDTConfig(profile=SIMPLE, engine="threaded")
        assert a.label == b.label

    def test_engine_validated(self):
        with pytest.raises(ValueError):
            SDTConfig(profile=SIMPLE, engine="warp")

    def test_equal_configs_equal_fingerprints(self):
        a = SDTConfig(profile=X86_P4, ib="ibtc", ibtc_entries=64)
        b = SDTConfig(profile=X86_P4, ib="ibtc", ibtc_entries=64)
        assert a is not b
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_is_hashable(self):
        hash(SDTConfig(profile=SPARC_US3).fingerprint())

    def test_same_name_derived_profile_changes_fingerprint(self):
        """derive() reusing a preset name must still produce a new key."""
        lookalike = X86_P4.derive("x86_p4", mispredict_penalty=1)
        a = SDTConfig(profile=X86_P4)
        b = SDTConfig(profile=lookalike)
        assert a.fingerprint() != b.fingerprint()


class TestProfileFingerprint:
    def test_distinct_presets_distinct(self):
        prints = {p.fingerprint() for p in (SIMPLE, X86_P4, X86_K8, SPARC_US3)}
        assert len(prints) == 4

    def test_class_cycles_reach_the_fingerprint(self):
        from repro.isa.opcodes import InstrClass

        tweaked = dict(SIMPLE.class_cycles)
        tweaked[InstrClass.MUL] += 1
        variant = SIMPLE.derive(SIMPLE.name, class_cycles=tweaked)
        assert variant.fingerprint() != SIMPLE.fingerprint()

    def test_covers_every_declared_field(self):
        names = [name for name, _value in SIMPLE.fingerprint()]
        declared = [spec.name for spec in dataclasses.fields(SIMPLE)]
        assert names == declared


def test_validation_still_rejects_bad_values():
    with pytest.raises(ValueError):
        SDTConfig(profile=SIMPLE, ib="oracle")
