"""IBTC mechanism: hit/miss dynamics, sizing, scopes, flush."""

from conftest import run_minic_sdt
from repro.host.profile import SIMPLE
from repro.sdt.config import SDTConfig
from repro.sdt.ib.ibtc import IBTC, ibtc_index

import pytest

#: exact hit/miss dynamics are clean-spec behaviour
pytestmark = pytest.mark.usefixtures("no_faults")


#: One hot indirect-call site cycling over N targets.
def dispatch_source(n_targets: int, iterations: int = 200) -> str:
    funcs = "".join(
        f"int f{i}(int x) {{ return x + {i}; }}\n" for i in range(n_targets)
    )
    table = "int tab[] = { " + ", ".join(
        f"&f{i}" for i in range(n_targets)
    ) + " };\n"
    return funcs + table + f"""
    int main() {{
        int total = 0;
        int i;
        for (i = 0; i < {iterations}; i++) {{
            int f = tab[i % {n_targets}];
            total += f(i);
        }}
        print_int(total);
        return 0;
    }}
    """


def run_ibtc(source: str, entries: int, shared: bool = True):
    config = SDTConfig(
        profile=SIMPLE, ib="ibtc", ibtc_entries=entries, ibtc_shared=shared
    )
    return run_minic_sdt(source, config)


class TestHash:
    def test_index_in_range(self):
        mask = 63
        for addr in range(0, 1 << 16, 52):
            assert 0 <= ibtc_index(addr, mask) <= mask

    def test_word_granularity(self):
        # addresses 4 apart should usually map to different slots
        indices = {ibtc_index(0x400000 + 4 * i, 1023) for i in range(64)}
        assert len(indices) > 32

    def test_validation(self):
        with pytest.raises(ValueError):
            IBTC(entries=0)
        with pytest.raises(ValueError):
            IBTC(entries=100)


class TestHitRates:
    def test_warm_monomorphic_site_hits(self):
        result = run_ibtc(dispatch_source(1), entries=256)
        stats = result.stats
        hits = stats.mechanism["ibtc-shared-256.hit"]
        misses = stats.mechanism["ibtc-shared-256.miss"]
        assert misses <= 3  # cold fill only (per target + ret targets)
        assert hits > 150

    def test_capacity_effect(self):
        """More distinct targets than entries -> thrashing misses."""
        source = dispatch_source(16, iterations=320)
        big = run_ibtc(source, entries=1024)
        small = run_ibtc(source, entries=2)
        assert big.stats.hit_rate("ibtc-shared-1024") > 0.9
        assert small.stats.hit_rate("ibtc-shared-2") < 0.6
        assert small.total_cycles > big.total_cycles

    def test_miss_falls_back_to_translator(self):
        result = run_ibtc(dispatch_source(4), entries=256)
        misses = result.stats.mechanism["ibtc-shared-256.miss"]
        assert result.stats.translator_reentries >= misses

    def test_returns_share_table_when_same(self):
        # with returns="same", rets dispatch through the IBTC too
        result = run_ibtc(dispatch_source(2), entries=256)
        dispatches = result.stats.ib_dispatches
        total = (
            result.stats.mechanism["ibtc-shared-256.hit"]
            + result.stats.mechanism["ibtc-shared-256.miss"]
        )
        assert total == dispatches["icall"] + dispatches["ret"] + \
            dispatches["ijump"]


class TestScope:
    def test_per_site_isolates_conflicts(self):
        """Two monomorphic sites thrash a shared single-entry table (the
        icall target and the return target evict each other every
        dispatch) but both hit in per-site tables of the same size —
        regardless of how the targets happen to hash."""
        source = dispatch_source(1, iterations=400)
        shared = run_ibtc(source, entries=1, shared=True)
        persite = run_ibtc(source, entries=1, shared=False)
        shared_rate = shared.stats.hit_rate("ibtc-shared-1")
        persite_rate = persite.stats.hit_rate("ibtc-persite-1")
        assert persite_rate > 0.9
        assert shared_rate < 0.5
        assert persite_rate > shared_rate

    def test_persite_label(self):
        config = SDTConfig(ib="ibtc", ibtc_shared=False, ibtc_entries=16)
        assert config.label == "ibtc(persite,16)"


class TestCosts:
    def test_probe_cost_charged_per_dispatch(self):
        from repro.host.costs import Category

        result = run_ibtc(dispatch_source(2, iterations=100), entries=256)
        dispatches = sum(result.stats.ib_dispatches.values())
        expected = dispatches * (SIMPLE.ibtc_probe + SIMPLE.ibtc_spill)
        assert result.cycles[Category.IBTC.value] == expected


class TestFlush:
    def test_flush_clears_tables(self):
        mechanism = IBTC(entries=16)

        class FakeFrag:
            fc_addr = 0
            valid = True

        mechanism._table_for(0).tags[0] = 0x1234
        mechanism._table_for(0).frags[0] = FakeFrag()
        mechanism.on_flush()
        assert mechanism._table_for(0).tags[0] == -1
        assert mechanism._table_for(0).frags[0] is None

    def test_correct_after_flush_pressure(self):
        source = dispatch_source(4, iterations=150)
        config = SDTConfig(profile=SIMPLE, ib="ibtc", ibtc_entries=64,
                           fragment_cache_bytes=256)
        result = run_minic_sdt(source, config)
        assert result.stats.cache_flushes > 0
        # equivalence: recompute natively
        from conftest import run_minic

        assert result.output == run_minic(source).output


class TestInlining:
    """Inline probe vs shared out-of-line stub (ablation axis)."""

    def test_outline_charges_stub_jump(self):
        from repro.host.costs import Category

        source = dispatch_source(2, iterations=100)
        inline = run_minic_sdt(
            source, SDTConfig(profile=SIMPLE, ib="ibtc", ibtc_inline=True)
        )
        outline = run_minic_sdt(
            source, SDTConfig(profile=SIMPLE, ib="ibtc", ibtc_inline=False)
        )
        dispatches = sum(inline.stats.ib_dispatches.values())
        extra = outline.cycles[Category.IBTC.value] - \
            inline.cycles[Category.IBTC.value]
        assert extra == dispatches * SIMPLE.ibtc_stub_jump

    def test_outline_shares_one_predictor_site(self):
        """Out-of-line funnels every IB through one host jump site, so two
        alternating monomorphic sites now thrash each other's prediction."""
        source = dispatch_source(2, iterations=200)
        inline = run_minic_sdt(
            source, SDTConfig(profile=SIMPLE, ib="ibtc", ibtc_inline=True)
        )
        outline = run_minic_sdt(
            source, SDTConfig(profile=SIMPLE, ib="ibtc", ibtc_inline=False)
        )
        assert outline.total_cycles > inline.total_cycles
        assert outline.output == inline.output

    def test_outline_label_and_name(self):
        config = SDTConfig(ib="ibtc", ibtc_inline=False)
        assert "outline" in config.label
        result = run_minic_sdt(
            dispatch_source(1, iterations=20),
            SDTConfig(profile=SIMPLE, ib="ibtc", ibtc_inline=False),
        )
        assert any("outline" in key for key in result.stats.mechanism)


class TestHashKinds:
    def test_shift_hash_is_plain_mask(self):
        assert ibtc_index(0x400010, 0xFF, "shift") == (0x400010 >> 2) & 0xFF

    def test_fold_differs_from_shift_for_aliasing_addresses(self):
        # two addresses 2^12 words apart alias under shift with a small
        # mask but not (necessarily) under fold
        a, b = 0x400000, 0x400000 + (1 << 14)
        mask = (1 << 10) - 1
        assert ibtc_index(a, mask, "shift") == ibtc_index(b, mask, "shift")
        assert ibtc_index(a, mask, "fold") != ibtc_index(b, mask, "fold")

    def test_unknown_hash_rejected(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            IBTC(hash_kind="crc")
        with _pytest.raises(ValueError):
            SDTConfig(ibtc_hash="crc")

    def test_both_hashes_equivalent_behaviour(self):
        from conftest import run_minic

        source = dispatch_source(4, iterations=80)
        expected = run_minic(source).output
        for hash_kind in ("fold", "shift"):
            result = run_minic_sdt(
                source,
                SDTConfig(profile=SIMPLE, ib="ibtc", ibtc_hash=hash_kind),
            )
            assert result.output == expected
