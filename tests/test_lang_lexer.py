"""MiniC lexer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import TokKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)][:-1]  # drop EOF


class TestTokens:
    def test_empty_source_has_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokKind.EOF

    def test_decimal_and_hex(self):
        tokens = tokenize("42 0x2A 0XFF")
        assert [t.value for t in tokens[:-1]] == [42, 42, 255]

    def test_identifiers_vs_keywords(self):
        tokens = tokenize("int foo while whileish _x x1")
        assert tokens[0].kind is TokKind.KEYWORD
        assert tokens[1].kind is TokKind.IDENT
        assert tokens[2].kind is TokKind.KEYWORD
        assert tokens[3].kind is TokKind.IDENT  # not a keyword prefix
        assert tokens[4].text == "_x"
        assert tokens[5].text == "x1"

    def test_char_literals(self):
        tokens = tokenize(r"'a' '\n' '\0' '\\' '\''")
        assert [t.value for t in tokens[:-1]] == [97, 10, 0, 92, 39]

    def test_string_literal(self):
        tokens = tokenize(r'"hi\n"')
        assert tokens[0].kind is TokKind.STRING
        assert tokens[0].text == "hi\n"

    def test_maximal_munch(self):
        assert texts("a >>> b >> c >= d > e") == \
            ["a", ">>>", "b", ">>", "c", ">=", "d", ">", "e"]
        assert texts("x<<=1") == ["x", "<<=", "1"]
        assert texts("i++ + ++j") == ["i", "++", "+", "++", "j"]

    def test_all_operators(self):
        ops = "&& || == != <= >= << >> += -= *= /= %= &= |= ^= ++ --"
        for op in ops.split():
            assert texts(f"a {op} b")[1] == op

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]


class TestComments:
    def test_line_comment(self):
        assert texts("a // rest\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_block_comment_tracks_lines(self):
        tokens = tokenize("/* 1\n2\n3 */ x")
        assert tokens[0].line == 3

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")


class TestErrors:
    @pytest.mark.parametrize("bad", ["@", "`", "$", "'ab'", "'", '"open'])
    def test_rejects(self, bad):
        with pytest.raises(LexError):
            tokenize(bad)

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"a\nb"')

    def test_bad_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')

    def test_error_carries_line(self):
        try:
            tokenize("ok\n@")
        except LexError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected LexError")
