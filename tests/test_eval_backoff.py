"""Backoff policy unit tests — fake clocks and sleepers, no real waits."""

import pytest

from repro.eval.backoff import Backoff, BackoffPolicy
from repro.eval.parallel import execute_cells


class TestBackoffPolicy:
    def test_exponential_schedule(self):
        policy = BackoffPolicy(base=0.5, factor=2.0, ceiling=30.0)
        assert policy.delay(1) == 0.5
        assert policy.delay(2) == 1.0
        assert policy.delay(3) == 2.0
        assert policy.delay(4) == 4.0

    def test_ceiling_is_hard_bound(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, ceiling=8.0)
        assert policy.delay(10) == 8.0
        assert policy.delay(100) == 8.0

    def test_attempt_below_one_raises(self):
        policy = BackoffPolicy()
        with pytest.raises(ValueError):
            policy.delay(0)

    def test_no_jitter_is_deterministic_and_exact(self):
        policy = BackoffPolicy(base=0.25, jitter=0.0)
        assert policy.delay(1, token="anything") == 0.25

    def test_jitter_is_deterministic_per_token_and_attempt(self):
        policy = BackoffPolicy(base=1.0, jitter=0.5, seed=7)
        first = policy.delay(3, token="cell-a")
        assert policy.delay(3, token="cell-a") == first
        assert policy.delay(3, token="cell-b") != first

    def test_jitter_subtracts_never_exceeds_raw_delay(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, ceiling=60.0,
                               jitter=0.5, seed=0)
        for attempt in range(1, 12):
            for token in ("a", "b", "c", ""):
                raw = min(1.0 * 2.0 ** (attempt - 1), 60.0)
                delay = policy.delay(attempt, token=token)
                assert raw * 0.5 <= delay <= raw

    def test_seed_changes_jitter_stream(self):
        a = BackoffPolicy(base=1.0, jitter=0.9, seed=1)
        b = BackoffPolicy(base=1.0, jitter=0.9, seed=2)
        assert [a.delay(i, token="t") for i in range(1, 6)] != \
               [b.delay(i, token="t") for i in range(1, 6)]

    def test_schedule_matches_delay(self):
        policy = BackoffPolicy(base=0.1, jitter=0.3, seed=5)
        schedule = policy.schedule(4, token="x")
        assert schedule == [policy.delay(i, token="x")
                            for i in range(1, 5)]

    @pytest.mark.parametrize("kwargs", [
        {"base": -1.0}, {"factor": 0.5}, {"ceiling": -0.1},
        {"jitter": -0.1}, {"jitter": 1.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)

    def test_zero_base_disables_backoff(self):
        policy = BackoffPolicy(base=0.0, jitter=0.5)
        assert policy.schedule(5, token="t") == [0.0] * 5


class TestBackoffWalker:
    def test_sleeps_follow_schedule_with_fake_sleeper(self):
        slept = []
        policy = BackoffPolicy(base=0.5, factor=2.0, ceiling=30.0)
        pacer = Backoff(policy, sleep=slept.append, token="k")
        for _ in range(3):
            pacer.sleep()
        assert slept == [0.5, 1.0, 2.0]
        assert pacer.slept == pytest.approx(3.5)
        assert pacer.attempt == 3

    def test_reset_restarts_the_schedule(self):
        slept = []
        pacer = Backoff(BackoffPolicy(base=1.0), sleep=slept.append)
        pacer.sleep()
        pacer.sleep()
        pacer.reset()
        pacer.sleep()
        assert slept == [1.0, 2.0, 1.0]

    def test_sleep_returns_the_delay(self):
        pacer = Backoff(BackoffPolicy(base=0.25), sleep=lambda _: None)
        assert pacer.sleep() == 0.25


class _BoomCell:
    """Minimal always-failing duck-typed cell (picklable)."""

    cacheable = True
    label = "fake:boom"

    def key(self):
        return "key-boom"

    def execute(self):
        raise ValueError("boom")


class TestExecutorIntegration:
    """The executor accepts a BackoffPolicy and never really sleeps in
    tests thanks to sub-millisecond bases."""

    def test_execute_cells_accepts_policy_serial(self):
        policy = BackoffPolicy(base=0.001, ceiling=0.002)
        results, report = execute_cells([_BoomCell()], jobs=1, retries=2,
                                        backoff=policy)
        assert results == {}
        [failure] = report.failures.values()
        assert failure.attempts == 3

    def test_execute_cells_accepts_float_backoff_still(self):
        results, report = execute_cells([_BoomCell()], jobs=1, retries=1,
                                        backoff=0.001)
        assert results == {}
        [failure] = report.failures.values()
        assert failure.attempts == 2
