"""Write-ahead journal: recovery, torn lines, compaction."""

import json

from repro.serve.journal import JOURNAL_NAME, Journal, load_pending


def test_roundtrip_done_requests_are_not_pending(tmp_path):
    journal = Journal(tmp_path)
    journal.open()
    first = journal.accepted("key-1", {"workload": "a"})
    second = journal.accepted("key-2", {"workload": "b"})
    journal.done(first, "key-1")
    journal.close()

    pending, next_id = load_pending(tmp_path / JOURNAL_NAME)
    assert [p.key for p in pending] == ["key-2"]
    assert pending[0].id == second
    assert pending[0].payload == {"workload": "b"}
    assert next_id == second + 1


def test_failed_requests_are_not_pending(tmp_path):
    journal = Journal(tmp_path)
    journal.open()
    record = journal.accepted("key-1", {})
    journal.failed(record, "key-1", "timeout: watchdog")
    journal.close()
    pending, _ = load_pending(tmp_path / JOURNAL_NAME)
    assert pending == []


def test_missing_journal_is_empty(tmp_path):
    pending, next_id = load_pending(tmp_path / "absent.jsonl")
    assert (pending, next_id) == ([], 1)


def test_torn_final_line_is_tolerated(tmp_path):
    path = tmp_path / JOURNAL_NAME
    lines = [
        json.dumps({"event": "accepted", "id": 1, "key": "k1",
                    "request": {"workload": "a"}}),
        json.dumps({"event": "accepted", "id": 2, "key": "k2",
                    "request": {"workload": "b"}}),
    ]
    path.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2],
                    encoding="utf-8")
    pending, next_id = load_pending(path)
    assert [p.key for p in pending] == ["k1"]
    assert next_id == 2


def test_corrupt_interior_lines_are_skipped(tmp_path):
    path = tmp_path / JOURNAL_NAME
    path.write_text(
        "not json at all\n"
        '{"event": "accepted"}\n'                       # missing id
        '{"event": "accepted", "id": 3, "key": "k3", '
        '"request": {"workload": "c"}}\n',
        encoding="utf-8",
    )
    pending, next_id = load_pending(path)
    assert [p.key for p in pending] == ["k3"]
    assert next_id == 4


def test_open_compacts_to_pending_only(tmp_path):
    journal = Journal(tmp_path)
    journal.open()
    for n in range(5):
        record = journal.accepted(f"key-{n}", {"n": n})
        if n != 3:
            journal.done(record, f"key-{n}")
    journal.close()

    reopened = Journal(tmp_path)
    pending = reopened.open()
    assert [p.key for p in pending] == ["key-3"]
    # the compacted file holds exactly the pending accepted records
    text = (tmp_path / JOURNAL_NAME).read_text(encoding="utf-8")
    assert len(text.splitlines()) == 1
    # ids keep ascending across the restart: no journal-id reuse
    fresh = reopened.accepted("key-new", {})
    assert fresh > pending[0].id
    reopened.close()


def test_append_requires_open(tmp_path):
    journal = Journal(tmp_path)
    try:
        journal.accepted("k", {})
    except RuntimeError as exc:
        assert "not open" in str(exc)
    else:
        raise AssertionError("expected RuntimeError")
