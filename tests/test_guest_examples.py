"""The MiniC programs shipped in examples/guest compile and run."""

from pathlib import Path

import pytest

from conftest import run_minic

GUEST = Path(__file__).resolve().parent.parent / "examples" / "guest"

EXPECTED = {
    "queens.mc": "8-queens solutions: 92\n",
    "calc.mc": "-78\n",
    "sieve_of_eratosthenes.mc": "primes below 200: 46\n",
}


def test_all_guest_examples_covered():
    assert {p.name for p in GUEST.glob("*.mc")} == set(EXPECTED)


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_guest_example(name):
    result = run_minic((GUEST / name).read_text())
    assert result.output == EXPECTED[name]
    assert result.exit_code == 0


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_guest_example_under_sdt(name):
    from conftest import assert_equivalent
    from repro.host.profile import SIMPLE
    from repro.sdt.config import SDTConfig

    assert_equivalent(
        (GUEST / name).read_text(),
        SDTConfig(profile=SIMPLE, returns="fast", trace_jumps=True),
    )
