"""Table 1: dynamic IB characteristics of the suite

Regenerates the experiment table into ``results/`` (and stdout with
``pytest -s``); the benchmarked body is one representative un-cached
simulation so pytest-benchmark tracks simulator performance too.

Run: ``pytest benchmarks/test_e1_ib_characteristics.py --benchmark-only -s``
"""

from conftest import fresh_simulation, run_experiment_table, run_once
from repro.host.profile import X86_P4
from repro.sdt.config import SDTConfig


def test_e1_ib_characteristics(benchmark):
    headers, rows = run_experiment_table("e1")
    assert rows, "experiment produced no rows"
    result = run_once(
        benchmark,
        fresh_simulation,
        "gcc_like",
        SDTConfig(profile=X86_P4, ib="reentry"),
    )
    assert result.exit_code == 0
