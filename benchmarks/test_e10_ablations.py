"""Ablations: IBTC inlining, IBTC hash, sieve insertion policy, linking.

Regenerates the ablation table into ``results/`` (and stdout with
``pytest -s``); the benchmarked body is one representative un-cached
simulation so pytest-benchmark tracks simulator performance too.

Run: ``pytest benchmarks/test_e10_ablations.py --benchmark-only -s``
"""

from conftest import fresh_simulation, run_experiment_table, run_once
from repro.host.profile import X86_P4
from repro.sdt.config import SDTConfig


def test_e10_ablations(benchmark):
    headers, rows = run_experiment_table("e10")
    assert rows, "experiment produced no rows"
    result = run_once(
        benchmark,
        fresh_simulation,
        "gcc_like",
        SDTConfig(profile=X86_P4, ib="ibtc", ibtc_inline=False),
    )
    assert result.exit_code == 0
