"""Fig.: overhead of the unoptimised SDT (translator re-entry per IB)

Regenerates the experiment table into ``results/`` (and stdout with
``pytest -s``); the benchmarked body is one representative un-cached
simulation so pytest-benchmark tracks simulator performance too.

Run: ``pytest benchmarks/test_e2_baseline_overhead.py --benchmark-only -s``
"""

from conftest import fresh_simulation, run_experiment_table, run_once
from repro.host.profile import X86_P4
from repro.sdt.config import SDTConfig


def test_e2_baseline_overhead(benchmark):
    headers, rows = run_experiment_table("e2")
    assert rows, "experiment produced no rows"
    result = run_once(
        benchmark,
        fresh_simulation,
        "perl_like",
        SDTConfig(profile=X86_P4, ib="reentry"),
    )
    assert result.exit_code == 0
