"""Fig.: return-handling schemes over an IBTC base

Regenerates the experiment table into ``results/`` (and stdout with
``pytest -s``); the benchmarked body is one representative un-cached
simulation so pytest-benchmark tracks simulator performance too.

Run: ``pytest benchmarks/test_e7_return_handling.py --benchmark-only -s``
"""

from conftest import fresh_simulation, run_experiment_table, run_once
from repro.host.profile import X86_P4
from repro.sdt.config import SDTConfig


def test_e7_return_handling(benchmark):
    headers, rows = run_experiment_table("e7")
    assert rows, "experiment produced no rows"
    result = run_once(
        benchmark,
        fresh_simulation,
        "crafty_like",
        SDTConfig(profile=X86_P4, ib="ibtc", returns="fast"),
    )
    assert result.exit_code == 0
