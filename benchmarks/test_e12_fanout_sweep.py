"""Fig.: overhead vs dispatch-site fan-out (synthetic microbenchmark).

Regenerates the experiment table into ``results/`` (and stdout with
``pytest -s``); the benchmarked body is one representative un-cached
simulation so pytest-benchmark tracks simulator performance too.

Run: ``pytest benchmarks/test_e12_fanout_sweep.py --benchmark-only -s``
"""

from conftest import run_experiment_table, run_once
from repro.host.profile import X86_P4
from repro.sdt.config import SDTConfig
from repro.sdt.vm import SDTVM
from repro.workloads.microbench import dispatch_microbench


def test_e12_fanout_sweep(benchmark):
    headers, rows = run_experiment_table("e12")
    assert rows, "experiment produced no rows"

    def representative():
        workload = dispatch_microbench(16, iterations=1000)
        config = SDTConfig(profile=X86_P4, ib="ibtc", inline_predict=True)
        return SDTVM(workload.compile(), config=config).run()

    result = run_once(benchmark, representative)
    assert result.exit_code == 0
