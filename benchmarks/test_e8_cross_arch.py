"""Fig.: cross-architecture geomean overheads

Regenerates the experiment table into ``results/`` (and stdout with
``pytest -s``); the benchmarked body is one representative un-cached
simulation so pytest-benchmark tracks simulator performance too.

Run: ``pytest benchmarks/test_e8_cross_arch.py --benchmark-only -s``
"""

from conftest import fresh_simulation, run_experiment_table, run_once
from repro.host.profile import SPARC_US3
from repro.sdt.config import SDTConfig


def test_e8_cross_arch(benchmark):
    headers, rows = run_experiment_table("e8")
    assert rows, "experiment produced no rows"
    result = run_once(
        benchmark,
        fresh_simulation,
        "perl_like",
        SDTConfig(profile=SPARC_US3, ib="ibtc", returns="fast"),
    )
    assert result.exit_code == 0
