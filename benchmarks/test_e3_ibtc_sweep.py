"""Fig.: overhead vs shared-IBTC size

Regenerates the experiment table into ``results/`` (and stdout with
``pytest -s``); the benchmarked body is one representative un-cached
simulation so pytest-benchmark tracks simulator performance too.

Run: ``pytest benchmarks/test_e3_ibtc_sweep.py --benchmark-only -s``
"""

from conftest import fresh_simulation, run_experiment_table, run_once
from repro.host.profile import X86_P4
from repro.sdt.config import SDTConfig


def test_e3_ibtc_sweep(benchmark):
    headers, rows = run_experiment_table("e3")
    assert rows, "experiment produced no rows"
    result = run_once(
        benchmark,
        fresh_simulation,
        "gcc_like",
        SDTConfig(profile=X86_P4, ib="ibtc", ibtc_entries=4096),
    )
    assert result.exit_code == 0
