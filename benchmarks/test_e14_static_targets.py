"""E14: devirtualization + preseeding delta (static_targets on/off).

Regenerates the experiment table into ``results/`` (and stdout with
``pytest -s``); the benchmarked body is one representative un-cached
simulation with the full static pipeline active (analysis + preseeding +
guarded direct branches), so pytest-benchmark tracks its cost too.

Run: ``pytest benchmarks/test_e14_static_targets.py --benchmark-only -s``
"""

from conftest import run_experiment_table, run_once
from repro.host.profile import X86_P4
from repro.sdt.config import SDTConfig
from repro.sdt.vm import SDTVM
from repro.workloads import get_workload


def test_e14_static_targets(benchmark):
    headers, rows = run_experiment_table("e14")
    assert rows, "experiment produced no rows"
    # soundness: the dispatch-weighted precision column must be total on
    # every workload row (an escaped dispatch would drag it below 1.0)
    precision = headers.index("precision")
    assert all(row[precision] == 1.0 for row in rows[:-1])
    # the switch/vtable-heavy workloads must show an IB-cycle saving
    # under the tuned IBTC once the static pipeline is on
    ib_delta = headers.index("Δib(ibtc)")
    by_name = {row[0]: row for row in rows}
    for name in ("gcc_like", "perl_like", "vpr_like", "crafty_like"):
        assert by_name[name][ib_delta] > 0, name

    def representative():
        workload = get_workload("perl_like", "small")
        config = SDTConfig(profile=X86_P4, ib="ibtc",
                           static_targets=True)
        return SDTVM(workload.compile(), config=config).run()

    result = run_once(benchmark, representative)
    assert result.exit_code == 0
