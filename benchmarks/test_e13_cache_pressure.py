"""E13: overhead & flush volume vs fragment-cache capacity, clean + chaos.

Regenerates the experiment table into ``results/`` (and stdout with
``pytest -s``); the benchmarked body is one representative un-cached
simulation under cache pressure *and* the pinned chaos fault plan, so
pytest-benchmark tracks the cost of the recovery paths too.

Run: ``pytest benchmarks/test_e13_cache_pressure.py --benchmark-only -s``
"""

from conftest import run_experiment_table, run_once
from repro.host.profile import X86_P4
from repro.sdt.config import SDTConfig
from repro.sdt.vm import SDTVM
from repro.workloads import get_workload


def test_e13_cache_pressure(benchmark):
    headers, rows = run_experiment_table("e13")
    assert rows, "experiment produced no rows"
    # chaos columns must show the forced-flush surplus over clean ones
    fl = headers.index("fl")
    fl_chaos = headers.index("fl*")
    assert all(row[fl_chaos] >= row[fl] for row in rows)

    def representative():
        workload = get_workload("gzip_like", "small")
        config = SDTConfig(profile=X86_P4, ib="ibtc",
                           fragment_cache_bytes=1024, faults="chaos:1234")
        return SDTVM(workload.compile(), config=config).run()

    result = run_once(benchmark, representative)
    assert result.exit_code == 0
