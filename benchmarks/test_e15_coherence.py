"""E15: invalidation-policy cost on the self-modifying scenario suite.

Regenerates the experiment table into ``results/`` (and stdout with
``pytest -s``); the benchmarked body is one un-cached mini-JIT run
under targeted invalidation — the full coherence path (write watch,
byte-range invalidation, scrub, retranslation) on every iteration.

Run: ``pytest benchmarks/test_e15_coherence.py --benchmark-only -s``
"""

from conftest import run_experiment_table, run_once
from repro.sdt.config import SDTConfig
from repro.sdt.vm import SDTVM
from repro.workloads import get_coherence_workload


def test_e15_coherence(benchmark):
    headers, rows = run_experiment_table("e15")
    assert rows, "experiment produced no rows"
    ibtc = headers.index("ibtc")
    writes = headers.index("writes")
    by_key = {(row[0], row[1], row[2]): row for row in rows}
    scenarios = {row[0] for row in rows}
    for scenario in scenarios:
        flush = by_key[(scenario, "8M", "flush")]
        page = by_key[(scenario, "8M", "page")]
        targeted = by_key[(scenario, "8M", "targeted")]
        # the headline separation: whole-cache flush costs the most,
        # byte-range targeted the least, page granularity between
        assert flush[ibtc] > page[ibtc] >= targeted[ibtc], scenario
        # every policy observes the same guest write stream
        assert flush[writes] > 0
    # smc_loop shares a page between the patch site and an untouched
    # helper, so page granularity strictly overpays there
    assert by_key[("smc_loop", "8M", "page")][ibtc] > \
        by_key[("smc_loop", "8M", "targeted")][ibtc]

    def representative():
        workload = get_coherence_workload("mini_jit", "small")
        config = SDTConfig(ib="ibtc", coherence="targeted")
        return SDTVM(workload.compile(), config=config).run()

    result = run_once(benchmark, representative)
    assert result.exit_code == 0
