"""Fig.: overhead vs sieve bucket count

Regenerates the experiment table into ``results/`` (and stdout with
``pytest -s``); the benchmarked body is one representative un-cached
simulation so pytest-benchmark tracks simulator performance too.

Run: ``pytest benchmarks/test_e5_sieve_sweep.py --benchmark-only -s``
"""

from conftest import fresh_simulation, run_experiment_table, run_once
from repro.host.profile import X86_P4
from repro.sdt.config import SDTConfig


def test_e5_sieve_sweep(benchmark):
    headers, rows = run_experiment_table("e5")
    assert rows, "experiment produced no rows"
    result = run_once(
        benchmark,
        fresh_simulation,
        "gcc_like",
        SDTConfig(profile=X86_P4, ib="sieve", sieve_buckets=512),
    )
    assert result.exit_code == 0
