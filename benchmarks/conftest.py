"""Benchmark harness configuration.

Each ``benchmarks/test_e*.py`` file regenerates one of the paper's tables
or figures (writing it to ``results/`` and stdout) and wires one
representative simulation into pytest-benchmark so the harness also tracks
the simulator's own performance.

Scale: ``REPRO_SCALE`` env var (``tiny`` / ``small`` / ``large``),
default ``small`` — the fidelity/runtime sweet spot on a laptop.

The tables are regenerated through the shared executor
(:mod:`repro.eval.parallel`): ``REPRO_JOBS`` selects the worker count
(default 1 = serial) and ``REPRO_DISK_CACHE=1`` enables the persistent
``results/.cache`` store so re-runs skip already-simulated cells.
"""

from __future__ import annotations

import os
import sys

#: experiment drivers import this
SCALE = os.environ.get("REPRO_SCALE", "small")
#: worker processes for the experiment executor
JOBS = int(os.environ.get("REPRO_JOBS", "1"))
#: opt-in persistent disk cache under results/.cache
USE_DISK_CACHE = os.environ.get("REPRO_DISK_CACHE", "") == "1"


def run_experiment_table(name: str):
    """Regenerate one experiment table via the shared executor."""
    from repro.eval.diskcache import DiskCache
    from repro.eval.parallel import run_experiment

    cache = DiskCache() if USE_DISK_CACHE else None
    return run_experiment(name, scale=SCALE, jobs=JOBS, cache=cache)


def run_once(benchmark, fn, *args, **kwargs):
    """Time one un-cached invocation (simulations are seconds-long)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def fresh_simulation(workload_name: str, config, scale: str | None = None):
    """Build-and-run one SDT simulation with no caching (for timing)."""
    from repro.sdt.vm import SDTVM
    from repro.workloads import get_workload

    workload = get_workload(workload_name, scale or SCALE)
    return SDTVM(workload.compile(), config=config).run()


sys.path.insert(0, os.path.dirname(__file__))
